(* Unit tests for the paper's protocol: the one-side-biased rule ladder,
   SynRan's stage machine, its correctness under adversaries, and agreement
   between the simulator and the exact chain analysis (Explorer). *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* --- Onesided ladder ---------------------------------------------------- *)

let action =
  Alcotest.testable
    (fun ppf -> function
      | Core.Onesided.Decide v -> Format.fprintf ppf "Decide %d" v
      | Core.Onesided.Propose v -> Format.fprintf ppf "Propose %d" v
      | Core.Onesided.Flip -> Format.fprintf ppf "Flip")
    ( = )

let classify_paper ~ones ~zeros ~n_prev =
  Core.Onesided.classify Core.Onesided.paper ~ones ~zeros ~n_prev

let test_ladder_paper_cases () =
  let n_prev = 10 in
  let case ~ones expected =
    Alcotest.check action
      (Printf.sprintf "ones=%d" ones)
      expected
      (classify_paper ~ones ~zeros:(n_prev - ones) ~n_prev)
  in
  case ~ones:10 (Core.Onesided.Decide 1);
  case ~ones:8 (Core.Onesided.Decide 1);
  case ~ones:7 (Core.Onesided.Propose 1) (* 70 > 70 is false: boundary *);
  case ~ones:6 Core.Onesided.Flip (* 60 > 60 false: boundary of propose 1 *);
  case ~ones:5 Core.Onesided.Flip;
  case ~ones:4 (Core.Onesided.Propose 0);
  case ~ones:3 (Core.Onesided.Decide 0);
  case ~ones:0 (Core.Onesided.Decide 0)

let test_ladder_boundaries_are_strict () =
  (* 10*O = 7*N' exactly: NOT a decision (strict >). *)
  Alcotest.check action "exact 7/10" (Core.Onesided.Propose 1)
    (classify_paper ~ones:7 ~zeros:3 ~n_prev:10);
  (* 10*O = 4*N' exactly: NOT a 0-decision (strict <). *)
  Alcotest.check action "exact 4/10" (Core.Onesided.Propose 0)
    (classify_paper ~ones:4 ~zeros:6 ~n_prev:10);
  (* 10*O = 5*N' exactly: not propose-0, lands in the flip band. *)
  Alcotest.check action "exact 5/10" Core.Onesided.Flip
    (classify_paper ~ones:5 ~zeros:5 ~n_prev:10)

let test_zero_rule () =
  (* Seeing no zeros forces a 1-proposal even with very few ones. *)
  Alcotest.check action "zero rule fires" (Core.Onesided.Propose 1)
    (classify_paper ~ones:2 ~zeros:0 ~n_prev:10);
  (* Without the rule the same observation decides 0. *)
  Alcotest.check action "ablated ladder decides 0" (Core.Onesided.Decide 0)
    (Core.Onesided.classify Core.Onesided.no_zero_rule ~ones:2 ~zeros:0
       ~n_prev:10);
  (* The rule is shadowed by the decide-1 branch when ones dominate. *)
  Alcotest.check action "decide-1 shadows it" (Core.Onesided.Decide 1)
    (classify_paper ~ones:8 ~zeros:0 ~n_prev:10)

let test_rules_validation () =
  Core.Onesided.validate Core.Onesided.paper;
  Core.Onesided.validate Core.Onesided.no_zero_rule;
  Core.Onesided.validate Core.Onesided.symmetric;
  let bad = { Core.Onesided.paper with Core.Onesided.decide_lo = 6 } in
  check_bool "inverted thresholds rejected" true
    (try
       Core.Onesided.validate bad;
       false
     with Invalid_argument _ -> true)

let test_apply_flip_uses_rng () =
  let rng = Prng.Rng.create 3 in
  let seen = Hashtbl.create 2 in
  for _ = 1 to 40 do
    let b, decided =
      Core.Onesided.apply Core.Onesided.paper ~ones:5 ~zeros:5 ~n_prev:10 rng
    in
    check_bool "flip never sets decided" false decided;
    Hashtbl.replace seen b ()
  done;
  check_int "both coin values appear" 2 (Hashtbl.length seen)

let test_classify_invalid () =
  check_bool "negative counts rejected" true
    (try
       ignore (classify_paper ~ones:(-1) ~zeros:0 ~n_prev:10);
       false
     with Invalid_argument _ -> true)

(* --- SynRan: deterministic behaviours ------------------------------------ *)

let run_synran ?(rules = Core.Onesided.paper) ?(max_rounds = 2000) ~inputs ~t
    ~seed adversary =
  let n = Array.length inputs in
  Sim.Engine.run ~max_rounds (Core.Synran.protocol ~rules n) adversary ~inputs
    ~t ~rng:(Prng.Rng.create seed)

let test_unanimous_ones_two_rounds () =
  let o = run_synran ~inputs:(Array.make 16 1) ~t:0 ~seed:1 Sim.Adversary.null in
  Alcotest.(check (option int)) "two rounds" (Some 2) o.Sim.Engine.rounds_to_decide;
  Array.iter
    (fun d -> Alcotest.(check (option int)) "decides 1" (Some 1) d)
    o.Sim.Engine.decisions

let test_unanimous_zeros_two_rounds () =
  let o = run_synran ~inputs:(Array.make 16 0) ~t:0 ~seed:2 Sim.Adversary.null in
  Alcotest.(check (option int)) "two rounds" (Some 2) o.Sim.Engine.rounds_to_decide;
  Array.iter
    (fun d -> Alcotest.(check (option int)) "decides 0" (Some 0) d)
    o.Sim.Engine.decisions

let test_decisive_majority_fast () =
  (* 13 of 16 ones: first receive decides 1 (13*10 > 7*16 = false: 130 > 112
     true), so everyone decides at round 1 and stops at round 2. *)
  let inputs = Array.init 16 (fun i -> if i < 13 then 1 else 0) in
  let o = run_synran ~inputs ~t:0 ~seed:3 Sim.Adversary.null in
  Alcotest.(check (option int)) "decides at 2" (Some 2) o.Sim.Engine.rounds_to_decide;
  check_bool "decides 1" true (o.Sim.Engine.decisions.(0) = Some 1)

let test_validity_all_ones_under_heavy_kills () =
  (* Validity with unanimous-1 inputs must survive a 70% massacre in round 1
     thanks to the zero rule. *)
  let inputs = Array.make 20 1 in
  let o =
    run_synran ~inputs ~t:14 ~seed:4 (Baselines.Adversaries.crash_all_at ~round:1)
  in
  Sim.Checker.assert_ok ~inputs o

let test_validity_violated_without_zero_rule () =
  (* The same massacre against the ablated rules shows why the rule exists:
     survivors see few ones against n_prev = n and decide 0 — a validity
     violation. This is the E8 headline, asserted as a regression. *)
  let inputs = Array.make 20 1 in
  let adversary =
    {
      Sim.Adversary.name = "massacre";
      plan =
        (fun view _ ->
          if view.Sim.Adversary.round = 1 then
            Sim.Adversary.active_pids view
            |> List.filteri (fun i _ -> i < 14)
            |> List.map Sim.Adversary.kill_silent
          else []);
    }
  in
  let o =
    run_synran ~rules:Core.Onesided.no_zero_rule ~inputs ~t:14 ~seed:5 adversary
  in
  let v = Sim.Checker.check ~inputs o in
  check_bool "validity broken" false v.Sim.Checker.validity

let test_stage_transitions () =
  (* Force the deterministic stage by killing most processes. *)
  let n = 64 in
  let inputs = Array.init n (fun i -> i land 1) in
  let adversary =
    {
      Sim.Adversary.name = "massacre@1";
      plan =
        (fun view _ ->
          if view.Sim.Adversary.round = 1 then
            Sim.Adversary.active_pids view
            |> List.filteri (fun i _ -> i < 61)
            |> List.map Sim.Adversary.kill_silent
          else []);
    }
  in
  let exec =
    Sim.Engine.start (Core.Synran.protocol n) ~inputs ~t:61
      ~rng:(Prng.Rng.create 6)
  in
  ignore (Sim.Engine.step exec adversary);
  let stages =
    Sim.Engine.states exec |> Array.to_list |> List.map Core.Synran.stage_name
    |> List.sort_uniq compare
  in
  (* After round 1 the 3 survivors saw N = 3 < sqrt(64/ln 64) = 3.92. *)
  ignore stages;
  let survivors =
    Sim.Engine.states exec |> Array.to_list
    |> List.filteri (fun i _ -> (Sim.Engine.alive exec).(i))
  in
  List.iter
    (fun s ->
      Alcotest.(check string) "switching" "switching" (Core.Synran.stage_name s))
    survivors;
  ignore (Sim.Engine.step exec adversary);
  let survivors =
    Sim.Engine.states exec |> Array.to_list
    |> List.filteri (fun i _ -> (Sim.Engine.alive exec).(i))
  in
  List.iter
    (fun s ->
      Alcotest.(check string) "deterministic" "deterministic"
        (Core.Synran.stage_name s))
    survivors;
  Sim.Engine.run_until exec adversary ~max_rounds:100;
  let o = Sim.Engine.outcome exec in
  Sim.Checker.assert_ok ~inputs o

let test_det_stage_round_count () =
  check_int "n=64" 4 (Core.Synran.det_stage_rounds ~n:64);
  check_int "n=1" 1 (Core.Synran.det_stage_rounds ~n:1);
  close ~eps:1e-9 "threshold n=64"
    (sqrt (64.0 /. log 64.0))
    (Core.Synran.switch_threshold ~n:64)

let test_single_process () =
  List.iter
    (fun v ->
      let o = run_synran ~inputs:[| v |] ~t:0 ~seed:7 Sim.Adversary.null in
      Alcotest.(check (option int)) "decides own input" (Some v)
        o.Sim.Engine.decisions.(0))
    [ 0; 1 ]

let test_two_processes () =
  for seed = 1 to 10 do
    let inputs = [| 0; 1 |] in
    let o = run_synran ~inputs ~t:1 ~seed (Baselines.Adversaries.random_crash ~p:0.3) in
    Sim.Checker.assert_ok ~inputs o
  done

let test_protocol_size_mismatch () =
  check_bool "init checks n" true
    (try
       ignore
         (Sim.Engine.run (Core.Synran.protocol 8) Sim.Adversary.null
            ~inputs:(Array.make 4 0) ~t:0 ~rng:(Prng.Rng.create 8));
       false
     with Invalid_argument _ -> true)

(* --- SynRan vs the exact chain (Explorer) --------------------------------- *)

let test_explorer_ladder_matches_onesided () =
  let n = 20 in
  for ones = 0 to n do
    let expected =
      match
        Core.Onesided.classify Core.Onesided.paper ~ones ~zeros:(n - ones)
          ~n_prev:n
      with
      | Core.Onesided.Decide 1 -> Core.Explorer.Decide_one
      | Core.Onesided.Decide _ -> Core.Explorer.Decide_zero
      | Core.Onesided.Propose 1 -> Core.Explorer.Propose_one
      | Core.Onesided.Propose _ -> Core.Explorer.Propose_zero
      | Core.Onesided.Flip -> Core.Explorer.Flip_all
    in
    check_bool
      (Printf.sprintf "ones=%d" ones)
      true
      (Core.Explorer.ladder ~ones n = expected)
  done

let test_explorer_hand_values_n3 () =
  (* n=3: ones=3 -> Decide 1 (2 rounds); ones=2 -> Propose 1 (3 rounds);
     ones<=1 -> Decide 0 (2 rounds); no flip band. *)
  close "rounds from 3 ones" 2.0 (Core.Explorer.expected_rounds ~ones:3 3);
  close "rounds from 2 ones" 3.0 (Core.Explorer.expected_rounds ~ones:2 3);
  close "rounds from 1 one" 2.0 (Core.Explorer.expected_rounds ~ones:1 3);
  close "P1 from 2 ones" 1.0 (Core.Explorer.decision_prob ~ones:2 3);
  close "P1 from 1 one" 0.0 (Core.Explorer.decision_prob ~ones:1 3);
  close "no flip band at n=3" 0.0 (Core.Explorer.flip_band_mass 3)

let test_explorer_flip_band_mass () =
  (* n=10: flip band is ones in {5, 6}: mass C(10,5)+C(10,6) over 2^10. *)
  close ~eps:1e-12 "n=10 band mass"
    ((252.0 +. 210.0) /. 1024.0)
    (Core.Explorer.flip_band_mass 10)

let test_simulation_matches_explorer_rounds () =
  (* Monte-Carlo SynRan (null adversary) vs the exact chain. *)
  let n = 16 in
  let trials = 4000 in
  let ones = 8 in
  let inputs = Array.init n (fun i -> if i < ones then 1 else 0) in
  let protocol = Core.Synran.protocol n in
  let master = Prng.Rng.create 99 in
  let rounds = Stats.Welford.create () in
  let decided_one = ref 0 in
  for _ = 1 to trials do
    let rng = Prng.Rng.split master in
    let o = Sim.Engine.run protocol Sim.Adversary.null ~inputs ~t:0 ~rng in
    (match o.Sim.Engine.rounds_to_decide with
    | Some r -> Stats.Welford.add_int rounds r
    | None -> Alcotest.fail "no termination under null adversary");
    if o.Sim.Engine.decisions.(0) = Some 1 then incr decided_one
  done;
  let exact_rounds = Core.Explorer.expected_rounds ~ones n in
  let mc_rounds = Stats.Welford.mean rounds in
  check_bool
    (Printf.sprintf "rounds: exact %.4f vs mc %.4f" exact_rounds mc_rounds)
    true
    (Float.abs (exact_rounds -. mc_rounds) < 0.1);
  let exact_p1 = Core.Explorer.decision_prob ~ones n in
  let mc_p1 = float_of_int !decided_one /. float_of_int trials in
  check_bool
    (Printf.sprintf "P1: exact %.4f vs mc %.4f" exact_p1 mc_p1)
    true
    (Float.abs (exact_p1 -. mc_p1) < 0.03)

let test_simulation_matches_explorer_from_propose_state () =
  let n = 12 in
  (* ones = 9 of 12: 90 > 7*12 = 84: Decide 1 at round 1, stop at 2. *)
  let inputs = Array.init n (fun i -> if i < 9 then 1 else 0) in
  let o = run_synran ~inputs ~t:0 ~seed:11 Sim.Adversary.null in
  close "exact expectation" 2.0 (Core.Explorer.expected_rounds ~ones:9 n);
  Alcotest.(check (option int)) "simulated" (Some 2) o.Sim.Engine.rounds_to_decide

(* --- Theory ------------------------------------------------------------------ *)

let test_theory_formulas () =
  close ~eps:1e-9 "lower bound" (100.0 /. ((4.0 *. sqrt (100.0 *. log 100.0)) +. 1.0))
    (Core.Theory.lower_bound_rounds ~n:100 ~t:100);
  close ~eps:1e-9 "tight shape"
    (50.0 /. sqrt (100.0 *. log (2.0 +. 5.0)))
    (Core.Theory.tight_bound_shape ~n:100 ~t:50);
  check_int "deterministic" 8 (Core.Theory.deterministic_rounds ~t:7);
  close ~eps:1e-9 "large-t shape" (sqrt (100.0 /. log 100.0))
    (Core.Theory.upper_bound_large_t_shape ~n:100)

let test_theory_monotonicity () =
  (* The tight bound grows with t and shrinks (at fixed t) with n. *)
  let prev = ref 0.0 in
  List.iter
    (fun t ->
      let v = Core.Theory.tight_bound_shape ~n:256 ~t in
      check_bool "monotone in t" true (v >= !prev);
      prev := v)
    [ 0; 10; 50; 100; 200; 255 ];
  check_bool "shrinks with n" true
    (Core.Theory.tight_bound_shape ~n:1024 ~t:100
    < Core.Theory.tight_bound_shape ~n:128 ~t:100)

let test_theory_success_prob () =
  check_bool "in [0,1)" true
    (let p = Core.Theory.lower_bound_success_prob ~n:1000 in
     p > 0.0 && p < 1.0);
  close "vacuous at n=2" 0.0 (Core.Theory.lower_bound_success_prob ~n:2)

let test_theory_crossover () =
  let c = Core.Theory.crossover_t ~n:256 in
  check_bool "crossover exists and is tiny" true (c >= 1 && c < 20)

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "core.onesided",
      [
        tc "paper ladder cases" test_ladder_paper_cases;
        tc "strict boundaries" test_ladder_boundaries_are_strict;
        tc "zero rule" test_zero_rule;
        tc "rules validation" test_rules_validation;
        tc "apply flips" test_apply_flip_uses_rng;
        tc "invalid counts" test_classify_invalid;
      ] );
    ( "core.synran",
      [
        tc "unanimous ones" test_unanimous_ones_two_rounds;
        tc "unanimous zeros" test_unanimous_zeros_two_rounds;
        tc "decisive majority" test_decisive_majority_fast;
        tc "validity under massacre" test_validity_all_ones_under_heavy_kills;
        tc "zero-rule ablation breaks validity"
          test_validity_violated_without_zero_rule;
        tc "stage transitions" test_stage_transitions;
        tc "det stage rounds" test_det_stage_round_count;
        tc "single process" test_single_process;
        tc "two processes" test_two_processes;
        tc "size mismatch" test_protocol_size_mismatch;
      ] );
    ( "core.explorer",
      [
        tc "ladder matches onesided" test_explorer_ladder_matches_onesided;
        tc "hand values n=3" test_explorer_hand_values_n3;
        tc "flip band mass n=10" test_explorer_flip_band_mass;
        tc "simulation matches exact rounds" test_simulation_matches_explorer_rounds;
        tc "decide state exact" test_simulation_matches_explorer_from_propose_state;
      ] );
    ( "core.theory",
      [
        tc "formulas" test_theory_formulas;
        tc "monotonicity" test_theory_monotonicity;
        tc "success probability" test_theory_success_prob;
        tc "crossover" test_theory_crossover;
      ] );
  ]

(* --- Leader-coin variant (CMS89 contrast, E7) ------------------------------ *)

let leader_suite =
  let tc name f = Alcotest.test_case name `Quick f in
  let run_leader ~inputs ~t ~seed adversary =
    let n = Array.length inputs in
    Sim.Engine.run ~max_rounds:3000
      (Core.Synran.protocol ~coin:Core.Synran.Leader_priority n)
      adversary ~inputs ~t ~rng:(Prng.Rng.create seed)
  in
  let test_fast_without_adversary () =
    (* The leader coin resolves every flip uniformly, so even maximally
       divided inputs finish in O(1) rounds. *)
    let rng = Prng.Rng.create 1 in
    let w = Stats.Welford.create () in
    for seed = 1 to 30 do
      let inputs = Sim.Runner.input_gen_split ~n:64 rng in
      let o = run_leader ~inputs ~t:0 ~seed Sim.Adversary.null in
      match o.Sim.Engine.rounds_to_decide with
      | Some r -> Stats.Welford.add_int w r
      | None -> Alcotest.fail "must terminate"
    done;
    check_bool "constant rounds" true (Stats.Welford.mean w < 5.0)
  in
  let test_safety_under_adversaries () =
    for seed = 1 to 10 do
      let n = 24 in
      let rng = Prng.Rng.create seed in
      let inputs = Sim.Runner.input_gen_random ~n rng in
      let killer =
        Core.Lb_adversary.leader_killer ~rules:Core.Onesided.paper
          ~bit_of_msg:Core.Synran.bit_of_msg
          ~prio_of_msg:Core.Synran.prio_of_msg ()
      in
      let o = run_leader ~inputs ~t:(n - 1) ~seed killer in
      Sim.Checker.assert_ok ~inputs o;
      let o' =
        run_leader ~inputs ~t:(n - 1) ~seed
          (Baselines.Adversaries.random_partial ~p:0.2)
      in
      Sim.Checker.assert_ok ~inputs o'
    done
  in
  let test_validity () =
    List.iter
      (fun v ->
        let inputs = Array.make 16 v in
        let o =
          run_leader ~inputs ~t:8 ~seed:3
            (Baselines.Adversaries.random_crash ~p:0.2)
        in
        Sim.Checker.assert_ok ~inputs o;
        Array.iteri
          (fun i d ->
            if not o.Sim.Engine.faulty.(i) then
              Alcotest.(check (option int)) "decides input" (Some v) d)
          o.Sim.Engine.decisions)
      [ 0; 1 ]
  in
  let test_killer_stalls_leader_not_synran () =
    let n = 64 in
    let killer () =
      Core.Lb_adversary.leader_killer ~rules:Core.Onesided.paper
        ~bit_of_msg:Core.Synran.bit_of_msg ~prio_of_msg:Core.Synran.prio_of_msg
        ()
    in
    let run protocol =
      Sim.Runner.run_trials ~max_rounds:3000 ~trials:20 ~seed:9
        ~gen_inputs:(Sim.Runner.input_gen_split ~n)
        ~t:(n - 1) protocol killer
    in
    let leader = run (Core.Synran.protocol ~coin:Core.Synran.Leader_priority n) in
    let plain = run (Core.Synran.protocol n) in
    check_bool
      (Printf.sprintf "leader %.1f >> synran %.1f"
         (Sim.Runner.mean_rounds leader)
         (Sim.Runner.mean_rounds plain))
      true
      (Sim.Runner.mean_rounds leader > 2.0 *. Sim.Runner.mean_rounds plain);
    Alcotest.(check (list string)) "leader runs stay safe" []
      leader.Sim.Runner.safety_errors
  in
  ( "core.leader-coin",
    [
      tc "O(1) rounds adversary-free" test_fast_without_adversary;
      tc "safe under adversaries" test_safety_under_adversaries;
      tc "validity" test_validity;
      tc "killer stalls leader only" test_killer_stalls_leader_not_synran;
    ] )

let suites = suites @ [ leader_suite ]

(* --- Symmetric-band agreement regression (E8) ------------------------------ *)

let symmetric_agreement_suite =
  let tc name f = Alcotest.test_case name `Quick f in
  let test_symmetric_band_breaks_agreement () =
    (* Regression pin for the E8 finding: under the voting attack, the
       symmetric flip band loses agreement at small n because survivors of
       a stop re-toss instead of being forced to propose the decided value
       (the zero rule is the paper's backstop). Paper rules never break. *)
    let n = 48 in
    let run rules =
      Sim.Runner.run_trials ~max_rounds:400 ~trials:200 ~seed:42
        ~gen_inputs:(Sim.Runner.input_gen_random ~n)
        ~t:(n - 1)
        (Core.Synran.protocol ~rules n)
        (fun () ->
          Core.Lb_adversary.band_control
            ~config:Core.Lb_adversary.voting_config ~rules
            ~bit_of_msg:Core.Synran.bit_of_msg ())
    in
    let symmetric = run Core.Onesided.symmetric in
    let paper = run Core.Onesided.paper in
    check_bool "symmetric band violates agreement" true
      (symmetric.Sim.Runner.safety_errors <> []);
    Alcotest.(check (list string)) "paper rules never do" []
      paper.Sim.Runner.safety_errors
  in
  ( "core.symmetric-agreement",
    [ tc "voting attack breaks the symmetric band" test_symmetric_band_breaks_agreement ] )

let suites = suites @ [ symmetric_agreement_suite ]

(* --- Shared-oracle coin (Rabin-style, E10) ---------------------------------- *)

let oracle_suite =
  let tc name f = Alcotest.test_case name `Quick f in
  let protocol n = Core.Synran.protocol ~coin:(Core.Synran.Shared_oracle 99) n in
  let test_safety () =
    for seed = 1 to 8 do
      let n = 24 in
      let rng = Prng.Rng.create seed in
      let inputs = Sim.Runner.input_gen_random ~n rng in
      let adversary =
        Core.Lb_adversary.band_control ~rules:Core.Onesided.paper
          ~bit_of_msg:Core.Synran.bit_of_msg ()
      in
      let o =
        Sim.Engine.run ~max_rounds:2000 (protocol n) adversary ~inputs
          ~t:(n - 1) ~rng
      in
      Sim.Checker.assert_ok ~inputs o
    done
  in
  let test_voting_attack_neutralized () =
    (* The voting attack trims based on last round's proposals, but the
       oracle coin resolves every flip identically and unpredictably, so
       the run unanimizes in O(1) rounds no matter the trimming. *)
    let n = 96 in
    let run p =
      Sim.Runner.run_trials ~max_rounds:2000 ~trials:25 ~seed:3
        ~gen_inputs:(Sim.Runner.input_gen_random ~n)
        ~t:(n - 1) p
        (fun () ->
          Core.Lb_adversary.band_control
            ~config:Core.Lb_adversary.voting_config ~rules:Core.Onesided.paper
            ~bit_of_msg:Core.Synran.bit_of_msg ())
    in
    let oracle = run (protocol n) in
    let private_coin = run (Core.Synran.protocol n) in
    check_bool
      (Printf.sprintf "oracle %.1f << private %.1f"
         (Sim.Runner.mean_rounds oracle)
         (Sim.Runner.mean_rounds private_coin))
      true
      (2.0 *. Sim.Runner.mean_rounds oracle < Sim.Runner.mean_rounds private_coin);
    Alcotest.(check (list string)) "oracle runs safe" []
      oracle.Sim.Runner.safety_errors
  in
  let test_oracle_deterministic_per_round () =
    (* Same seed, same round: every process flips to the same value (the
       chain unanimizes right after the first flip round). *)
    let n = 32 in
    let inputs = Array.init n (fun i -> i land 1) in
    let o =
      Sim.Engine.run (protocol n) Sim.Adversary.null ~inputs ~t:0
        ~rng:(Prng.Rng.create 4)
    in
    (match o.Sim.Engine.rounds_to_decide with
    | Some r -> check_bool "O(1) rounds" true (r <= 4)
    | None -> Alcotest.fail "must terminate");
    Sim.Checker.assert_ok ~inputs o
  in
  ( "core.shared-oracle",
    [
      tc "safety under band control" test_safety;
      tc "voting attack neutralized" test_voting_attack_neutralized;
      tc "unanimizes after one flip" test_oracle_deterministic_per_round;
    ] )

let suites = suites @ [ oracle_suite ]

(* --- Explorer variance oracle ------------------------------------------------- *)

let variance_suite =
  let tc name f = Alcotest.test_case name `Quick f in
  let test_deterministic_states_zero_variance () =
    close "decide state" 0.0 (Core.Explorer.rounds_variance ~ones:16 16);
    close "propose state" 0.0 (Core.Explorer.rounds_variance ~ones:2 3)
  in
  let test_simulation_matches_variance () =
    let n = 16 in
    let ones = 8 in
    let inputs = Array.init n (fun i -> if i < ones then 1 else 0) in
    let protocol = Core.Synran.protocol n in
    let master = Prng.Rng.create 321 in
    let w = Stats.Welford.create () in
    for _ = 1 to 4000 do
      let rng = Prng.Rng.split master in
      let o = Sim.Engine.run protocol Sim.Adversary.null ~inputs ~t:0 ~rng in
      match o.Sim.Engine.rounds_to_decide with
      | Some r -> Stats.Welford.add_int w r
      | None -> Alcotest.fail "must terminate"
    done;
    let exact = Core.Explorer.rounds_variance ~ones n in
    let sampled = Stats.Welford.variance w in
    check_bool
      (Printf.sprintf "variance: exact %.4f vs sampled %.4f" exact sampled)
      true
      (Float.abs (exact -. sampled) < 0.25 *. exact +. 0.05)
  in
  let test_variance_positive_in_band () =
    check_bool "flip band has positive variance" true
      (Core.Explorer.rounds_variance ~ones:8 16 > 0.0)
  in
  ( "core.explorer-variance",
    [
      tc "deterministic states" test_deterministic_states_zero_variance;
      tc "simulation matches exact variance" test_simulation_matches_variance;
      tc "positive in the flip band" test_variance_positive_in_band;
    ] )

let suites = suites @ [ variance_suite ]

(* --- Stopping-rule window ------------------------------------------------------- *)

(* The stability rule keeps four receive counts and stops once decided and
   N^(r-3) - N^r <= N^(r-2)/10, i.e. the kills of the last THREE rounds stay
   within a tenth of the population. That width is load-bearing: it is what
   guarantees every survivor at least proposed the decided bit before anyone
   stops (see the derivation in synran.ml). A plausible-looking shortening to
   N^(r-2) - N^r <= N^(r-1)/10 was audited during the parallel-runner work
   and found unsound — it admits real agreement violations (pinned by the
   regression below). These tests pin both the halt round and agreement. *)
let halt_window_suite =
  let tc name f = Alcotest.test_case name `Quick f in
  let test_no_failure_halts_immediately () =
    (* Decided at round 1; with no drop the very next stability check
       passes, so output lands at round 2 — the minimum possible. *)
    let o =
      run_synran ~inputs:(Array.make 40 1) ~t:0 ~seed:5 Sim.Adversary.null
    in
    Alcotest.(check (option int)) "halt round" (Some 2)
      o.Sim.Engine.rounds_to_decide
  in
  let test_drop_delays_halt_three_checks () =
    (* 10 of 40 die silently in round 2. Survivors' counts are
       40, 30, 30, 30, ...; the drop of 10 > 40/10 sits inside the
       three-round window of the stability checks at rounds 2, 3 and 4, so
       all three fail; round 5 is the first whose window is fully stable.
       A shortened two-count window would halt at round 4 — this value is
       the discriminator. *)
    let killer =
      {
        Sim.Adversary.name = "burst@2";
        plan =
          (fun view _ ->
            if view.Sim.Adversary.round = 2 then
              List.init 10 Sim.Adversary.kill_silent
            else []);
      }
    in
    let o = run_synran ~inputs:(Array.make 40 1) ~t:10 ~seed:6 killer in
    Alcotest.(check (option int)) "halt round" (Some 5)
      o.Sim.Engine.rounds_to_decide;
    Array.iteri
      (fun pid d ->
        if pid >= 10 then
          Alcotest.(check (option int))
            (Printf.sprintf "survivor %d decides 1" pid)
            (Some 1) d)
      o.Sim.Engine.decisions
  in
  let test_voting_attack_agreement () =
    (* Agreement counterexample for the shortened window: n = 192, t = n-1,
       private coins, band voting attack, the exact randomness of trial 30
       of experiment E10 (seed 42). Under the two-count variant some
       processes output 1 while others, seeing one round of kills too many,
       fall back and decide 0. The four-count rule keeps this run safe;
       this test must stay green for any future change to the rule. *)
    let n = 192 in
    let rng = Prng.Rng.of_seed_index ~seed:42 ~index:29 in
    let inputs = Sim.Runner.input_gen_random ~n rng in
    let adversary =
      Core.Lb_adversary.band_control ~config:Core.Lb_adversary.voting_config
        ~rules:Core.Onesided.paper ~bit_of_msg:Core.Synran.bit_of_msg ()
    in
    let o =
      Sim.Engine.run ~max_rounds:2000 (Core.Synran.protocol n) adversary
        ~inputs ~t:(n - 1) ~rng
    in
    let verdict = Sim.Checker.check ~inputs o in
    Alcotest.(check (list string)) "no safety errors" []
      verdict.Sim.Checker.errors
  in
  ( "core.synran-halt-window",
    [
      tc "no failures: halt at round 2" test_no_failure_halts_immediately;
      tc "round-2 burst: halt at round 5" test_drop_delays_halt_three_checks;
      tc "voting attack, E10 trial 30: agreement" test_voting_attack_agreement;
    ] )

let suites = suites @ [ halt_window_suite ]
