(* detlint — determinism & domain-safety lint for this repository.

   The repo's headline guarantee (bit-identical experiment summaries at any
   [--jobs]) is a property of the whole source tree, not of any one module:
   a single call to the global [Random], a wall-clock read in a result path,
   or a mutable global captured by a spawned domain silently breaks the
   reproduction of the paper's quantitative claims (E1-E12).  This tool
   parses every [.ml] file with ppxlib and enforces the invariants as named
   rules:

   R1  no [Random.*] (including [self_init]) outside [lib/prng] — all
       randomness must flow through the seeded, splittable [Prng.Rng].
   R2  no wall-clock / entropy sources ([Unix.gettimeofday], [Unix.time],
       [Sys.time]) anywhere; timing code must carry an explicit waiver.
   R3  no [Hashtbl.iter] / [Hashtbl.fold] whose result escapes without a
       subsequent sort (order-sensitivity heuristic): the fold must appear
       in the argument position of a sorting function, e.g.
       [Hashtbl.fold f t [] |> List.sort cmp].
   R4  race heuristic — module-level mutable state ([ref], [Hashtbl.create],
       mutable containers, or any top-level binding the file itself mutates)
       referenced inside a closure literal passed to [Domain.spawn] or a
       [Sim.Parallel] entry point.
   R5  polymorphic comparison inside the determinism-critical hot-path
       libraries [lib/stats], [lib/sim], [lib/core] and [lib/coinflip]: any
       bare [compare] (use [Float.compare] / [Int.compare]), [=] / [<>]
       where an operand is syntactically float-valued, and any comparison
       operator applied to a tuple literal (spell the lexicographic
       comparison out per component).
   R6  no direct [Obs.Clock.*] use outside [lib/obs] and [bench]: the
       diagnostic timing quarantine. [Obs.Clock] is the one sanctioned
       wall-clock entry point (its own R2 waiver documents why); keeping
       every caller inside the observability library and the bench harness
       is what guarantees timings can only reach diagnostic output, never
       an experiment table, a metrics registry, or an RNG.
   R10 no [Fault.fire] / [Fault.trip] outside the injector-mediated call
       paths (lib/sim/{fault,parallel,checkpoint,runner}.ml and
       lib/core/{fault,supervise}.ml). Fault-site triggers anywhere else
       would inject failures outside the retry/quarantine machinery and
       outside the replay contract ([--fault-plan] re-runs must place
       every fault identically). Constructing or parsing plans is legal
       anywhere; only firing sites is confined. The unit-test tree is
       exempt (tests exercise the injector directly).

   Rules R7 (cohort class-member order), R8 (float-fold ordering on merged
   registries), R9 (mutable state escaping supervised chunk closures) and
   T1 (interprocedural source->sink taint) live in the typed pass — see
   [Detlint_callgraph] and [Detlint_taint]; this module only registers
   their rule ids and documentation so waivers parse and reports render
   uniformly.

   The rules in this module are heuristic and syntactic by design: they
   run on the parse tree, with no type information, so they can be wired
   into the build with zero compilation cost and report precise source
   locations.  False positives are silenced with a visible, justified
   waiver attribute:

     (expr [@detlint.allow "R3: per-key sum is commutative"])

   The payload must be a string literal "R<n>: <justification>"; a waiver
   with an empty justification is itself a violation (rule W0), and it does
   NOT suppress the underlying finding. *)

open Ppxlib

type severity = Violation | Waived

(* One well-formed [@detlint.allow] attribute, keyed by the attribute's own
   source location. [ws_used] flips when the waiver suppresses a finding;
   sites left unused by both the syntactic and the typed pass are stale
   (rule W1, audited by main.ml under [--check-waivers]). *)
type waiver_site = {
  ws_rule : string;
  ws_file : string;
  ws_line : int;
  ws_col : int;
  mutable ws_used : bool;
}

type finding = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
  hint : string;
  severity : severity;
  justification : string option;
}

(* Rules a [@detlint.allow] may name. R7-R9 and T1 are enforced by the
   typed taint pass (detlint_taint.ml); their waivers parse here so the
   syntactic pass neither W0s them nor suppresses anything with them. *)
let rule_ids =
  [ "R1"; "R2"; "R3"; "R4"; "R5"; "R6"; "R7"; "R8"; "R9"; "R10"; "T1" ]

(* Everything that can appear as a finding's [rule], for the JSON report. *)
let all_rule_ids = rule_ids @ [ "W0"; "W1"; "P0" ]

let rule_doc = function
  | "R1" -> "global Random outside lib/prng"
  | "R2" -> "wall-clock / entropy source"
  | "R3" -> "unsorted Hashtbl.iter/fold (order-sensitivity heuristic)"
  | "R4" -> "module-level mutable state captured by a parallel closure"
  | "R5" ->
      "polymorphic compare/= at float type/tuple comparison in lib/stats, \
       lib/sim, lib/core or lib/coinflip"
  | "R6" ->
      "direct Obs.Clock use outside lib/obs and bench (the diagnostic \
       timing quarantine)"
  | "R7" ->
      "member-order-sensitive control flow inside the cohort-op closure \
       (typed taint pass)"
  | "R8" ->
      "order-sensitive float fold on a merge-flow path (typed taint pass)"
  | "R9" ->
      "mutable state escaping the supervised chunk boundary (typed taint \
       pass)"
  | "R10" ->
      "Fault.fire/Fault.trip outside the injector-mediated call paths (the \
       chaos-replay quarantine)"
  | "T1" ->
      "nondeterminism source reaching a protected sink path (typed taint \
       pass)"
  | "W0" -> "malformed detlint.allow waiver"
  | "W1" -> "stale detlint.allow waiver (suppresses nothing)"
  | "P0" -> "parse error"
  | _ -> "unknown rule"

(* ------------------------------------------------------------------ *)
(* Small helpers                                                       *)
(* ------------------------------------------------------------------ *)

let strip_prefix ~prefix s =
  let lp = String.length prefix in
  if String.length s >= lp && String.sub s 0 lp = prefix then
    Some (String.sub s lp (String.length s - lp))
  else None

let has_prefix ~prefix s = Option.is_some (strip_prefix ~prefix s)

(* "Stdlib.Sys.time" and "Pervasives.compare" normalise to the bare path. *)
let normalize_path p =
  match strip_prefix ~prefix:"Stdlib." p with
  | Some rest -> rest
  | None -> (
      match strip_prefix ~prefix:"Pervasives." p with
      | Some rest -> rest
      | None -> p)

let path_of_longident lid =
  match Longident.flatten_exn lid with
  | segs -> Some (String.concat "." segs)
  | exception _ -> None

let ident_path e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Option.map normalize_path (path_of_longident txt)
  | _ -> None

(* Head function of a (possibly partial) application, e.g. the path of
   [List.sort] in [List.sort cmp]. *)
let rec head_path e =
  match e.pexp_desc with
  | Pexp_ident _ -> ident_path e
  | Pexp_apply (f, _) -> head_path f
  | Pexp_constraint (e, _) -> head_path e
  | _ -> None

let rec unwrap_constraint e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) -> unwrap_constraint e
  | _ -> e

let sort_fns =
  [
    "List.sort"; "List.stable_sort"; "List.fast_sort"; "List.sort_uniq";
    "Array.sort"; "Array.stable_sort"; "Array.fast_sort";
  ]

let time_fns = [ "Unix.gettimeofday"; "Unix.time"; "Sys.time" ]

let hashtbl_order_fns = [ "Hashtbl.iter"; "Hashtbl.fold" ]

(* Entry points that run closures on other domains. *)
let parallel_entry p =
  p = "Domain.spawn"
  || List.mem p
       [
         "Parallel.fold_chunks"; "Parallel.map"; "Parallel.run_workers";
         "Sim.Parallel.fold_chunks"; "Sim.Parallel.map";
         "Sim.Parallel.run_workers";
       ]

(* Module-level bindings to these constructors are treated as mutable
   state for R4 (Atomic.make is deliberately absent: atomics are the
   sanctioned cross-domain cells). *)
let mutable_creators =
  [
    "ref"; "Hashtbl.create"; "Array.make"; "Array.init"; "Array.create_float";
    "Buffer.create"; "Queue.create"; "Stack.create"; "Bytes.create";
    "Bytes.make";
  ]

(* Applications whose first argument is being mutated in place. *)
let mutator_fns =
  [
    "Hashtbl.replace"; "Hashtbl.add"; "Hashtbl.remove"; "Hashtbl.reset";
    "Hashtbl.clear"; "Array.set"; "Array.fill"; "Array.blit"; "Bytes.set";
    "Buffer.add_string"; "Buffer.add_char"; "Buffer.clear"; "Queue.push";
    "Queue.add"; "Queue.pop"; "Queue.take"; "Queue.clear"; "Stack.push";
    "Stack.pop"; "Stack.clear";
  ]

let float_ops = [ "+."; "-."; "*."; "/."; "**" ]

let float_returning =
  [ "float_of_int"; "sqrt"; "exp"; "log"; "Float.abs"; "Float.min"; "Float.max" ]

(* Syntactic "this expression is float-valued" heuristic for R5. *)
let rec floatish e =
  match (unwrap_constraint e).pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_apply (f, args) -> (
      match ident_path f with
      | Some p when List.mem p float_ops || List.mem p float_returning -> true
      | _ -> (
          match args with
      | [ (_, l); (_, r) ] when ident_path f = Some "~-." -> floatish l || floatish r
          | _ -> false))
  | _ -> false

let in_scope_r1 relpath = not (has_prefix ~prefix:"lib/prng/" relpath)

let in_scope_r5 relpath =
  has_prefix ~prefix:"lib/stats/" relpath
  || has_prefix ~prefix:"lib/sim/" relpath
  || has_prefix ~prefix:"lib/core/" relpath
  || has_prefix ~prefix:"lib/coinflip/" relpath

(* The timing quarantine: Obs.Clock may only be touched from inside the
   observability library itself and the bench harness. *)
let in_scope_r6 relpath =
  not
    (has_prefix ~prefix:"lib/obs/" relpath
    || has_prefix ~prefix:"bench/" relpath)

(* The chaos-replay quarantine: fault-site triggers are confined to the
   injector engine and the supervised runner stack that threads it.
   Anywhere else, a fire/trip would inject failures outside the
   retry/quarantine machinery, and [--fault-plan] replays would no longer
   place every fault identically. Plan construction and parsing are legal
   anywhere; the unit-test tree is exempt because tests exercise the
   injector directly. *)
let r10_trigger_files =
  [
    "lib/sim/fault.ml";
    "lib/sim/parallel.ml";
    "lib/sim/checkpoint.ml";
    "lib/sim/runner.ml";
    "lib/core/fault.ml";
    "lib/core/supervise.ml";
  ]

let in_scope_r10 relpath =
  (not (List.mem relpath r10_trigger_files))
  && not (has_prefix ~prefix:"test/" relpath)

(* "Fault.fire" / "Sim.Fault.trip" / "Core.Fault.fire" — any dotted path
   whose last two components name a fault-site trigger. *)
let is_fault_trigger p =
  let tail_matches suffix =
    p = suffix
    ||
    let ls = String.length suffix and lp = String.length p in
    lp > ls + 1 && String.sub p (lp - ls - 1) (ls + 1) = "." ^ suffix
  in
  tail_matches "Fault.fire" || tail_matches "Fault.trip"

(* ------------------------------------------------------------------ *)
(* Waiver attribute parsing                                            *)
(* ------------------------------------------------------------------ *)

type waiver_parse =
  | Not_a_waiver
  | Malformed of string
  | Waiver of string * string  (* rule, justification *)

let parse_waiver (attr : attribute) =
  if attr.attr_name.txt <> "detlint.allow" then Not_a_waiver
  else
    match attr.attr_payload with
    | PStr
        [
          {
            pstr_desc =
              Pstr_eval
                ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
            _;
          };
        ] -> (
        let rule, rest =
          match String.index_opt s ':' with
          | Some i ->
              ( String.trim (String.sub s 0 i),
                String.trim (String.sub s (i + 1) (String.length s - i - 1)) )
          | None -> (
              match String.index_opt s ' ' with
              | Some i ->
                  ( String.sub s 0 i,
                    String.trim
                      (String.sub s (i + 1) (String.length s - i - 1)) )
              | None -> (String.trim s, ""))
        in
        match (List.mem rule rule_ids, rest) with
        | false, _ ->
            Malformed
              (Printf.sprintf "unknown rule %S (expected one of R1..R9, T1)"
                 rule)
        | true, "" ->
            Malformed
              (Printf.sprintf
                 "waiver for %s is missing a justification (use \"%s: why\")"
                 rule rule)
        | true, _ -> Waiver (rule, rest))
    | _ -> Malformed "payload must be a string literal \"R<n>: justification\""

(* ------------------------------------------------------------------ *)
(* R4 pass 1: module-level mutable state                               *)
(* ------------------------------------------------------------------ *)

module StringSet = Set.Make (String)

let rec pattern_names acc p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> StringSet.add txt acc
  | Ppat_alias (p, { txt; _ }) -> pattern_names (StringSet.add txt acc) p
  | Ppat_tuple ps -> List.fold_left pattern_names acc ps
  | Ppat_constraint (p, _) -> pattern_names acc p
  | _ -> acc

let is_creator_rhs e =
  match (unwrap_constraint e).pexp_desc with
  | Pexp_apply (f, _) -> (
      match ident_path f with
      | Some p -> List.mem p mutable_creators
      | None -> false)
  | _ -> false

(* Names of all structure-level bindings (recursing into nested modules),
   split into "all of them" and "those whose right-hand side is a mutable
   container". *)
let rec module_level_bindings str =
  List.fold_left
    (fun (all, created) item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.fold_left
            (fun (all, created) vb ->
              let names = pattern_names StringSet.empty vb.pvb_pat in
              let all = StringSet.union all names in
              let created =
                if is_creator_rhs vb.pvb_expr then
                  StringSet.union created names
                else created
              in
              (all, created))
            (all, created) vbs
      | Pstr_module { pmb_expr; _ } -> module_level_of_mod (all, created) pmb_expr
      | Pstr_recmodule mbs ->
          List.fold_left
            (fun acc mb -> module_level_of_mod acc mb.pmb_expr)
            (all, created) mbs
      | _ -> (all, created))
    (StringSet.empty, StringSet.empty)
    str
  |> fun (all, created) -> (all, created)

and module_level_of_mod acc me =
  match me.pmod_desc with
  | Pmod_structure str ->
      let all', created' = module_level_bindings str in
      let all, created = acc in
      (StringSet.union all all', StringSet.union created created')
  | Pmod_constraint (me, _) -> module_level_of_mod acc me
  | _ -> acc

(* Names that the file mutates somewhere ([x := ...], [x.f <- ...], or a
   known in-place mutator applied to [x]). *)
let mutated_names str =
  let acc = ref StringSet.empty in
  let add e =
    match (unwrap_constraint e).pexp_desc with
    | Pexp_ident { txt = Lident name; _ } -> acc := StringSet.add name !acc
    | _ -> ()
  in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_setfield (target, _, _) -> add target
        | Pexp_apply (f, args) -> (
            match (ident_path f, args) with
            | Some ":=", (_, target) :: _ -> add target
            | Some p, (Nolabel, target) :: _ when List.mem p mutator_fns ->
                add target
            | _ -> ())
        | _ -> ());
        super#expression e
    end
  in
  it#structure str;
  !acc

let collect_mutable_globals str =
  let all, created = module_level_bindings str in
  let mutated = mutated_names str in
  StringSet.inter all (StringSet.union created mutated)

(* ------------------------------------------------------------------ *)
(* Main lint pass                                                      *)
(* ------------------------------------------------------------------ *)

class linter ~relpath ~mutable_globals ~(emit : finding -> unit)
  ~(register_waiver : waiver_site -> unit) =
  object (self)
    inherit Ast_traverse.iter as super

    (* > 0 while visiting an expression whose value is consumed by a
       sorting function (R3's escape heuristic). *)
    val mutable sorted_depth = 0

    (* > 0 while visiting the body of a closure literal passed to
       Domain.spawn / Sim.Parallel (R4). *)
    val mutable par_depth = 0

    (* Active [@detlint.allow] waivers, innermost last. *)
    val mutable waivers : (string * string * waiver_site) list = []

    method private report ~rule ~loc ~message ~hint =
      let pos = loc.loc_start in
      let line = pos.pos_lnum and col = pos.pos_cnum - pos.pos_bol in
      match List.find_opt (fun (r, _, _) -> r = rule) waivers with
      | Some (_, just, site) ->
          site.ws_used <- true;
          emit
            {
              rule; file = relpath; line; col; message; hint;
              severity = Waived; justification = Some just;
            }
      | None ->
          emit
            {
              rule; file = relpath; line; col; message; hint;
              severity = Violation; justification = None;
            }

    method private add_waiver ~loc attr =
      match parse_waiver attr with
      | Not_a_waiver -> ()
      | Waiver (rule, just) ->
          let apos = attr.attr_loc.loc_start in
          let site =
            {
              ws_rule = rule;
              ws_file = relpath;
              ws_line = apos.pos_lnum;
              ws_col = apos.pos_cnum - apos.pos_bol;
              ws_used = false;
            }
          in
          register_waiver site;
          waivers <- (rule, just, site) :: waivers
      | Malformed why ->
          let pos = loc.loc_start in
          emit
            {
              rule = "W0";
              file = relpath;
              line = pos.pos_lnum;
              col = pos.pos_cnum - pos.pos_bol;
              message = "malformed [@detlint.allow]: " ^ why;
              hint =
                "write [@detlint.allow \"R<n>: one-line justification\"]; a \
                 malformed waiver suppresses nothing";
              severity = Violation;
              justification = None;
            }

    method private push_attrs ~loc attrs k =
      let saved = waivers in
      List.iter (self#add_waiver ~loc) attrs;
      k ();
      waivers <- saved

    (* --- per-ident checks (R1, R2, R3, R5-compare) ------------------- *)
    method private check_path p loc =
      (match String.split_on_char '.' p with
      | "Random" :: _ :: _ when in_scope_r1 relpath ->
          self#report ~rule:"R1" ~loc
            ~message:(Printf.sprintf "call to global %s" p)
            ~hint:
              "route all randomness through the seeded Prng.Rng (lib/prng); \
               the global Random breaks (seed, trial_index) reproducibility"
      | _ -> ());
      if List.mem p time_fns then
        self#report ~rule:"R2" ~loc
          ~message:(Printf.sprintf "wall-clock/entropy source %s" p)
          ~hint:
            "experiment results must be pure functions of the seed; if this \
             is genuinely a timing measurement, waive it with \
             [@detlint.allow \"R2: why\"]";
      if List.mem p hashtbl_order_fns && sorted_depth = 0 then
        self#report ~rule:"R3" ~loc
          ~message:
            (Printf.sprintf
               "%s result escapes without a subsequent sort (iteration order \
                is unspecified)"
               p)
          ~hint:
            "pipe the result into List.sort/Array.sort, or waive with \
             [@detlint.allow \"R3: why the consumer is order-insensitive\"]";
      if
        (has_prefix ~prefix:"Obs.Clock." p || p = "Obs.Clock")
        && in_scope_r6 relpath
      then
        self#report ~rule:"R6" ~loc
          ~message:
            (Printf.sprintf "use of %s outside the timing quarantine" p)
          ~hint:
            "Obs.Clock (the one sanctioned wall-clock entry point) may only \
             be called from lib/obs and bench; emit an Obs.Event and derive \
             timings in the diagnostic consumer instead";
      if is_fault_trigger p && in_scope_r10 relpath then
        self#report ~rule:"R10" ~loc
          ~message:
            (Printf.sprintf
               "fault-site trigger %s outside the injector-mediated call \
                paths"
               p)
          ~hint:
            "Fault.fire/Fault.trip may only run inside the fault engine and \
             the supervised runner stack (lib/sim/fault.ml, parallel.ml, \
             checkpoint.ml, runner.ml, lib/core/fault.ml, supervise.ml); \
             thread a fault plan through Sim.Runner.run_trials_supervised / \
             Core.Supervise.create instead of tripping sites ad hoc";
      if p = "compare" && in_scope_r5 relpath then
        self#report ~rule:"R5" ~loc
          ~message:"polymorphic compare in a determinism-critical library"
          ~hint:
            "use the monomorphic Float.compare / Int.compare / String.compare \
             (NaN-safe, no structural-compare surprises, faster)";
      if par_depth > 0 && not (String.contains p '.')
         && StringSet.mem p mutable_globals then
        self#report ~rule:"R4" ~loc
          ~message:
            (Printf.sprintf
               "module-level mutable binding %S captured by a closure passed \
                to Domain.spawn / Sim.Parallel"
               p)
          ~hint:
            "pass per-chunk state through the ~create/~merge accumulator or \
             use Atomic; unsynchronized cross-domain mutation is a data race"

    (* --- expressions ------------------------------------------------- *)
    method! expression e =
      self#push_attrs ~loc:e.pexp_loc e.pexp_attributes (fun () ->
          match e.pexp_desc with
          | Pexp_ident { txt; _ } -> (
              match path_of_longident txt with
              | Some p -> self#check_path (normalize_path p) e.pexp_loc
              | None -> ())
          | Pexp_apply (fn, args) -> self#visit_apply fn args
          | _ -> super#expression e)

    method private visit_apply fn args =
      (* R5: [=] / [<>] with a syntactically float operand. *)
      (match (ident_path fn, args) with
      | Some (("=" | "<>") as op), [ (_, l); (_, r) ]
        when in_scope_r5 relpath && (floatish l || floatish r) ->
          self#report ~rule:"R5" ~loc:fn.pexp_loc
            ~message:
              (Printf.sprintf
                 "polymorphic (%s) applied to a float-valued operand" op)
            ~hint:
              "use Float.equal / Float.compare (or an epsilon test); \
               polymorphic equality at float type is NaN-hostile"
      | _ -> ());
      (* R5: a comparison operator applied to a syntactic tuple literal —
         polymorphic structural comparison on a hot path (e.g.
         [(m.prio, pid) > (bp, bpid)]). *)
      (match (ident_path fn, args) with
      | Some (("=" | "<>" | "<" | ">" | "<=" | ">=") as op), [ (_, l); (_, r) ]
        when in_scope_r5 relpath
             && (match ((unwrap_constraint l).pexp_desc,
                        (unwrap_constraint r).pexp_desc) with
                | Pexp_tuple _, _ | _, Pexp_tuple _ -> true
                | _ -> false) ->
          self#report ~rule:"R5" ~loc:fn.pexp_loc
            ~message:
              (Printf.sprintf
                 "polymorphic (%s) applied to a tuple literal" op)
            ~hint:
              "spell the lexicographic comparison out with Int.compare / \
               Float.compare per component; structural comparison allocates \
               and hides float/NaN hazards on hot paths"
      | _ -> ());
      let fn_path = head_path fn in
      match (ident_path fn, args) with
      (* [e |> List.sort cmp] / [e |> List.sort]: lhs is sorted. *)
      | Some "|>", [ (ll, lhs); (rl, rhs) ]
        when Option.fold ~none:false
               ~some:(fun p -> List.mem p sort_fns)
               (head_path rhs) ->
          ignore ll; ignore rl;
          self#expression fn;
          sorted_depth <- sorted_depth + 1;
          self#expression lhs;
          sorted_depth <- sorted_depth - 1;
          self#expression rhs
      (* [List.sort cmp @@ e]: rhs is sorted. *)
      | Some "@@", [ (_, lhs); (_, rhs) ]
        when Option.fold ~none:false
               ~some:(fun p -> List.mem p sort_fns)
               (head_path lhs) ->
          self#expression fn;
          self#expression lhs;
          sorted_depth <- sorted_depth + 1;
          self#expression rhs;
          sorted_depth <- sorted_depth - 1
      | _ -> (
          match fn_path with
          (* Direct [List.sort cmp (Hashtbl.fold ...)]. *)
          | Some p when List.mem p sort_fns ->
              self#expression fn;
              sorted_depth <- sorted_depth + 1;
              List.iter (fun (_, a) -> self#expression a) args;
              sorted_depth <- sorted_depth - 1
          (* Closure literals handed to another domain. *)
          | Some p when parallel_entry p ->
              self#expression fn;
              List.iter
                (fun (_, a) ->
                  match (unwrap_constraint a).pexp_desc with
                  | Pexp_function _ ->
                      par_depth <- par_depth + 1;
                      self#expression a;
                      par_depth <- par_depth - 1
                  | _ -> self#expression a)
                args
          | _ ->
              self#expression fn;
              List.iter (fun (_, a) -> self#expression a) args)

    (* --- bindings and structure items carrying waivers ---------------- *)
    method! value_binding vb =
      self#push_attrs ~loc:vb.pvb_loc vb.pvb_attributes (fun () ->
          super#value_binding vb)

    method! structure_item item =
      match item.pstr_desc with
      | Pstr_eval (_, attrs) ->
          self#push_attrs ~loc:item.pstr_loc attrs (fun () ->
              super#structure_item item)
      (* R1 also covers [open Random] / [module R = Random]. *)
      | Pstr_open { popen_expr = { pmod_desc = Pmod_ident { txt; _ }; _ }; _ }
        when (match path_of_longident txt with
             | Some p -> normalize_path p = "Random"
             | None -> false)
             && in_scope_r1 relpath ->
          self#report ~rule:"R1" ~loc:item.pstr_loc
            ~message:"open of the global Random module"
            ~hint:"route all randomness through the seeded Prng.Rng (lib/prng)";
          super#structure_item item
      | Pstr_module
          { pmb_expr = { pmod_desc = Pmod_ident { txt; _ }; _ }; _ }
        when (match path_of_longident txt with
             | Some p -> normalize_path p = "Random"
             | None -> false)
             && in_scope_r1 relpath ->
          self#report ~rule:"R1" ~loc:item.pstr_loc
            ~message:"alias of the global Random module"
            ~hint:"route all randomness through the seeded Prng.Rng (lib/prng)";
          super#structure_item item
      | _ -> super#structure_item item

    (* File-level waivers: a floating [@@@detlint.allow "..."] applies to
       the remainder of the enclosing structure. *)
    method! structure items =
      let saved = waivers in
      List.iter
        (fun item ->
          (match item.pstr_desc with
          | Pstr_attribute a -> self#add_waiver ~loc:item.pstr_loc a
          | _ -> ());
          self#structure_item item)
        items;
      waivers <- saved
  end

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let lint_structure_audit ~relpath str =
  let findings = ref [] in
  let sites = ref [] in
  let mutable_globals = collect_mutable_globals str in
  let it =
    new linter
      ~relpath ~mutable_globals
      ~emit:(fun f -> findings := f :: !findings)
      ~register_waiver:(fun s -> sites := s :: !sites)
  in
  it#structure str;
  (List.rev !findings, List.rev !sites)

let lint_structure ~relpath str = fst (lint_structure_audit ~relpath str)

let lint_source_audit ~relpath source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf relpath;
  match Parse.implementation lexbuf with
  | str -> lint_structure_audit ~relpath str
  | exception exn ->
      ( [
          {
            rule = "P0";
            file = relpath;
            line = 1;
            col = 0;
            message = "cannot parse: " ^ Printexc.to_string exn;
            hint = "detlint only lints code that compiles";
            severity = Violation;
            justification = None;
          };
        ],
        [] )

let lint_source ~relpath source = fst (lint_source_audit ~relpath source)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file_audit ?relpath path =
  let relpath = Option.value relpath ~default:path in
  lint_source_audit ~relpath (read_file path)

let lint_file ?relpath path = fst (lint_file_audit ?relpath path)

(* Deterministic recursive walk for [.ml] files; [_build], [.git] and
   [lint_fixtures] (the deliberately-bad test corpus) are skipped. *)
let rec walk_ml_files acc path =
  if Sys.file_exists path && Sys.is_directory path then
    let base = Filename.basename path in
    if base = "_build" || base = ".git" || base = "lint_fixtures" then acc
    else
      Sys.readdir path |> Array.to_list
      |> List.sort String.compare
      |> List.fold_left
           (fun acc name -> walk_ml_files acc (Filename.concat path name))
           acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let lint_paths_audit paths =
  let files = List.fold_left walk_ml_files [] paths |> List.sort String.compare in
  let findings, sites =
    List.fold_left
      (fun (fs, ss) f ->
        let fs', ss' = lint_file_audit f in
        (fs' :: fs, ss' :: ss))
      ([], []) files
  in
  (files, List.concat (List.rev findings), List.concat (List.rev sites))

let lint_paths paths =
  let files, findings, _ = lint_paths_audit paths in
  (files, findings)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let render f =
  match f.severity with
  | Violation ->
      Printf.sprintf "%s:%d:%d: [%s] %s\n    hint: %s" f.file f.line f.col
        f.rule f.message f.hint
  | Waived ->
      Printf.sprintf "%s:%d:%d: [%s/waived] %s\n    justification: %s" f.file
        f.line f.col f.rule f.message
        (Option.value f.justification ~default:"")

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Canonical finding order: report position first, rule as a tie-break.
   Sorting before emission makes results/detlint.json independent of
   directory-walk and traversal order. *)
let compare_findings a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let json_schema_version = 2

let to_json ~files findings =
  let findings = List.stable_sort compare_findings findings in
  let violations =
    List.length (List.filter (fun f -> f.severity = Violation) findings)
  in
  let waived =
    List.length (List.filter (fun f -> f.severity = Waived) findings)
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       "{\n  \"tool\": \"detlint\",\n  \"schema_version\": %d,\n  \
        \"rules\": {\n"
       json_schema_version);
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf "    \"%s\": \"%s\"%s\n" r (json_escape (rule_doc r))
           (if i = List.length all_rule_ids - 1 then "" else ",")))
    all_rule_ids;
  Buffer.add_string b
    (Printf.sprintf
       "  },\n  \"summary\": { \"files\": %d, \"violations\": %d, \"waived\": \
        %d },\n  \"findings\": [\n"
       files violations waived);
  List.iteri
    (fun i f ->
      Buffer.add_string b
        (Printf.sprintf
           "    { \"file\": \"%s\", \"line\": %d, \"col\": %d, \"rule\": \
            \"%s\", \"severity\": \"%s\", \"message\": \"%s\"%s }%s\n"
           (json_escape f.file) f.line f.col f.rule
           (match f.severity with
           | Violation -> "violation"
           | Waived -> "waived")
           (json_escape f.message)
           (match f.justification with
           | Some j -> Printf.sprintf ", \"justification\": \"%s\"" (json_escape j)
           | None -> "")
           (if i = List.length findings - 1 then "" else ",")))
    findings;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b
