(* detlint's typed front end: reads the [.cmt] typed trees dune already
   produces (-bin-annot is on by default; [dune build @check] materializes
   them for every library and executable), extracts per-function facts, and
   builds the interprocedural call graph the taint pass (detlint_taint.ml)
   propagates over.

   One [node] per named function: every value binding whose right-hand side
   is syntactically a function, qualified by its enclosing modules and
   enclosing function bindings ("Sim.Cohort.step.find_member"), plus
   synthetic nodes for anonymous lambdas bound directly to the cohort-op
   record fields [c_phase_a]/[c_absorb]/[c_msg]. Facts occurring outside
   any function (module-level initialization code) attach to a per-unit
   "(toplevel)" node.

   Extracted facts, all carrying precise source locations and the innermost
   active [@detlint.allow] waiver if one matches their underlying rule:

   - call edges: every identifier referenced in the body. [Pdot] paths are
     global names ("Sim.Protocol.cohort_capable", already display-form in
     the typed tree); [Pident]s are resolved against enclosing scopes after
     the whole graph is loaded, so local helpers and siblings link up.
   - nondeterminism sources: global [Random] (R1), wall-clock/entropy (R2),
     [Gc] statistics (R2), unsorted [Hashtbl] iteration (R3), polymorphic
     [compare] (R5), [Domain] identity (T1), and [Obs.Clock] outside the
     lib/obs + bench quarantine (R6). The Hashtbl check reuses the
     syntactic pass's escape heuristic (a fold feeding a sort is ordered).
   - float folds (R8): [fold_left]/[fold_right] applications whose result
     type is [float] — order-sensitive accumulations, checked against the
     merge-flow region by the taint pass.
   - order ops (R7): descending [for ... downto] loops and unsorted
     Hashtbl iteration — member-order-sensitive control flow, checked
     against the cohort-op closure by the taint pass.
   - supervised captures (R9): free variables of mutable type ([ref],
     [Hashtbl.t], [Buffer.t], [Queue.t], [Stack.t]) captured by closure
     literals passed to [fold_chunks_supervised] — state that escapes the
     chunk boundary.

   Every waiver the typed pass sees is also registered (by source location)
   so main.ml can audit staleness (W1) across both passes. *)

type loc = { l_file : string; l_line : int; l_col : int }

let compare_loc a b =
  let c = String.compare a.l_file b.l_file in
  if c <> 0 then c
  else
    let c = Int.compare a.l_line b.l_line in
    if c <> 0 then c else Int.compare a.l_col b.l_col

type waiver = {
  w_rule : string;
  w_just : string;
  w_loc : loc;  (* location of the attribute itself, the W1 audit key *)
}

type source_kind =
  | Sk_random  (* global Random outside lib/prng          -> R1 *)
  | Sk_wallclock  (* Unix.gettimeofday / Unix.time / Sys.time -> R2 *)
  | Sk_gc  (* Gc statistics (alloc counters, heap words) -> R2 *)
  | Sk_hashtbl_order  (* unsorted Hashtbl.iter/fold        -> R3 *)
  | Sk_polycompare  (* bare polymorphic compare            -> R5 *)
  | Sk_clock  (* Obs.Clock outside lib/obs and bench       -> R6 *)
  | Sk_domain_id  (* Domain.self: scheduling identity      -> T1 *)

let source_kind_name = function
  | Sk_random -> "random"
  | Sk_wallclock -> "wall-clock"
  | Sk_gc -> "gc-stats"
  | Sk_hashtbl_order -> "hashtbl-order"
  | Sk_polycompare -> "poly-compare"
  | Sk_clock -> "obs-clock"
  | Sk_domain_id -> "domain-identity"

(* The waiver rule that silences a given source kind. *)
let source_rule = function
  | Sk_random -> "R1"
  | Sk_wallclock | Sk_gc -> "R2"
  | Sk_hashtbl_order -> "R3"
  | Sk_polycompare -> "R5"
  | Sk_clock -> "R6"
  | Sk_domain_id -> "T1"

type occurrence = {
  o_kind : source_kind;
  o_path : string;  (* the offending identifier, display form *)
  o_loc : loc;
  o_waiver : waiver option;
}

type order_op = Downto_loop | Hashtbl_iteration

type capture = {
  cap_name : string;  (* the escaping variable *)
  cap_ty : string;  (* its mutable head constructor, e.g. "ref" *)
  cap_entry : string;  (* the parallel entry point captured through *)
  cap_loc : loc;
  cap_waiver : waiver option;
}

type call = {
  (* Global (Pdot) callee in display form, or a bare local name plus the
     scope stack it must be resolved against. *)
  callee : string;
  local_scopes : string list option;  (* None = global *)
}

type node = {
  fn : string;  (* qualified display name *)
  n_file : string;
  n_line : int;
  mutable calls : call list;
  mutable sources : occurrence list;
  mutable float_folds : (loc * waiver option) list;
  mutable order_ops : (order_op * string * loc * waiver option) list;
  mutable captures : capture list;
  mutable fn_waiver : waiver option;
      (* function-level [@detlint.allow "T1: ..."] on the binding:
         quarantines the whole function in the taint pass *)
  mutable cohort_field : bool;
      (* bound (directly or by name pun) to a c_phase_a/c_absorb/c_msg
         record field — an R7 root even if the name is unconventional *)
}

type graph = {
  nodes : (string, node) Hashtbl.t;
  mutable units : string list;  (* display unit names, for reporting *)
  mutable waivers_seen : waiver list;  (* every waiver in the typed trees *)
}

(* ------------------------------------------------------------------ *)
(* Name normalization                                                  *)
(* ------------------------------------------------------------------ *)

let strip_prefix ~prefix s =
  let lp = String.length prefix in
  if String.length s >= lp && String.sub s 0 lp = prefix then
    Some (String.sub s lp (String.length s - lp))
  else None

(* "Sim__Cohort" -> "Sim.Cohort"; "Dune__exe__Main" -> "Main". *)
let normalize_unit m =
  let m = match strip_prefix ~prefix:"Dune__exe__" m with Some r -> r | None -> m in
  let b = Buffer.create (String.length m) in
  let i = ref 0 in
  let len = String.length m in
  while !i < len do
    if !i + 1 < len && m.[!i] = '_' && m.[!i + 1] = '_' then begin
      Buffer.add_char b '.';
      i := !i + 2
    end
    else begin
      Buffer.add_char b m.[!i];
      incr i
    end
  done;
  Buffer.contents b

(* "Stdlib.Hashtbl.create" -> "Hashtbl.create"; unit mangling undone. *)
let normalize_path p =
  let p = match strip_prefix ~prefix:"Stdlib." p with Some r -> r | None -> p in
  if String.length p > 0 && p.[0] >= 'A' && p.[0] <= 'Z' then normalize_unit p
  else p

let base_name fn =
  match String.rindex_opt fn '.' with
  | Some i -> String.sub fn (i + 1) (String.length fn - i - 1)
  | None -> fn

let module_path fn =
  match String.rindex_opt fn '.' with Some i -> String.sub fn 0 i | None -> ""

(* [suffix_matches ~suffix name]: dotted-suffix match, so the fixture
   corpus's self-contained stand-ins ("Bad_r9.Parallel.fold_chunks_supervised")
   trip the same patterns as the real tree ("Sim.Parallel...."). *)
let suffix_matches ~suffix name =
  name = suffix
  ||
  let ls = String.length suffix and ln = String.length name in
  ln > ls + 1
  && String.sub name (ln - ls) ls = suffix
  && name.[ln - ls - 1] = '.'

(* ------------------------------------------------------------------ *)
(* Source / pattern tables                                             *)
(* ------------------------------------------------------------------ *)

let wallclock_fns = [ "Unix.gettimeofday"; "Unix.time"; "Sys.time" ]

let gc_fns =
  [
    "Gc.stat"; "Gc.quick_stat"; "Gc.counters"; "Gc.minor_words";
    "Gc.allocated_bytes"; "Gc.major_slice";
  ]

let hashtbl_order_fns = [ "Hashtbl.iter"; "Hashtbl.fold" ]

let domain_id_fns = [ "Domain.self"; "Domain.is_main_domain" ]

let sort_fns =
  [
    "List.sort"; "List.stable_sort"; "List.fast_sort"; "List.sort_uniq";
    "Array.sort"; "Array.stable_sort"; "Array.fast_sort";
  ]

let fold_fns =
  [ "List.fold_left"; "List.fold_right"; "Array.fold_left"; "Array.fold_right" ]

let supervised_entries = [ "Parallel.fold_chunks_supervised" ]

let mutable_head_ctors =
  [ "ref"; "Hashtbl.t"; "Buffer.t"; "Queue.t"; "Stack.t" ]

let cohort_field_names = [ "c_phase_a"; "c_absorb"; "c_msg" ]

let in_scope_r1 file = not (String.length file >= 9 && String.sub file 0 9 = "lib/prng/")

let in_scope_r5 file =
  List.exists
    (fun p -> Option.is_some (strip_prefix ~prefix:p file))
    [ "lib/stats/"; "lib/sim/"; "lib/core/"; "lib/coinflip/" ]

let in_scope_r6 file =
  not
    (Option.is_some (strip_prefix ~prefix:"lib/obs/" file)
    || Option.is_some (strip_prefix ~prefix:"bench/" file))

(* ------------------------------------------------------------------ *)
(* Compiler-libs helpers                                               *)
(* ------------------------------------------------------------------ *)

let loc_of (l : Location.t) ~file =
  {
    l_file = file;
    l_line = l.Location.loc_start.Lexing.pos_lnum;
    l_col = l.Location.loc_start.Lexing.pos_cnum - l.Location.loc_start.Lexing.pos_bol;
  }

(* Same surface syntax as the ppxlib pass: [@detlint.allow "R<n>: why"].
   Rules outside the known set are left to the syntactic pass's W0. *)
let known_rules =
  [ "R1"; "R2"; "R3"; "R4"; "R5"; "R6"; "R7"; "R8"; "R9"; "T1" ]

let parse_waiver ~file (attr : Parsetree.attribute) =
  if attr.Parsetree.attr_name.Location.txt <> "detlint.allow" then None
  else
    match attr.Parsetree.attr_payload with
    | Parsetree.PStr
        [
          {
            pstr_desc =
              Pstr_eval
                ( { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ },
                  _ );
            _;
          };
        ] ->
        let rule, rest =
          match String.index_opt s ':' with
          | Some i ->
              ( String.trim (String.sub s 0 i),
                String.trim (String.sub s (i + 1) (String.length s - i - 1)) )
          | None -> (String.trim s, "")
        in
        if List.mem rule known_rules && rest <> "" then
          Some
            {
              w_rule = rule;
              w_just = rest;
              w_loc = loc_of attr.Parsetree.attr_loc ~file;
            }
        else None
    | _ -> None

let head_ctor_name ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Some (normalize_path (Path.name p))
  | _ -> None

(* Typedtree keeps constraints/coercions in [exp_extra], not the
   description, so no unwrapping is needed. *)
let unwrap_texp (e : Typedtree.expression) = e

let rec head_ident (e : Typedtree.expression) =
  match (unwrap_texp e).Typedtree.exp_desc with
  | Typedtree.Texp_ident (p, _, _) -> Some p
  | Typedtree.Texp_apply (f, _) -> head_ident f
  | _ -> None

let head_ident_name e =
  Option.map (fun p -> normalize_path (Path.name p)) (head_ident e)

let is_function e =
  match (unwrap_texp e).Typedtree.exp_desc with
  | Typedtree.Texp_function _ -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* The walker                                                          *)
(* ------------------------------------------------------------------ *)

let walk_structure graph ~unit_name ~file (str : Typedtree.structure) =
  (* Scope stack, outermost first: unit name, then enclosing module and
     function names. *)
  let scopes = ref [ unit_name ] in
  let node_of_scopes () = String.concat "." (List.rev !scopes) in
  (* Current function node facts attach to; lazily created for toplevel. *)
  let current : node option ref = ref None in
  let waiver_stack : waiver list ref = ref [] in
  let sorted_depth = ref 0 in
  let get_node name ~line =
    match Hashtbl.find_opt graph.nodes name with
    | Some n -> n
    | None ->
        let n =
          {
            fn = name;
            n_file = file;
            n_line = line;
            calls = [];
            sources = [];
            float_folds = [];
            order_ops = [];
            captures = [];
            fn_waiver = None;
            cohort_field = false;
          }
        in
        Hashtbl.add graph.nodes name n;
        n
  in
  let fact_node ~line =
    match !current with
    | Some n -> n
    | None ->
        let n = get_node (unit_name ^ ".(toplevel)") ~line in
        current := Some n;
        n
  in
  let active_waiver rules =
    List.find_opt (fun w -> List.mem w.w_rule rules) !waiver_stack
  in
  let push_waivers attrs k =
    let ws = List.filter_map (parse_waiver ~file) attrs in
    List.iter (fun w -> graph.waivers_seen <- w :: graph.waivers_seen) ws;
    let saved = !waiver_stack in
    waiver_stack := ws @ !waiver_stack;
    Fun.protect ~finally:(fun () -> waiver_stack := saved) k
  in
  let record_ident p (l : Location.t) =
    let line = l.Location.loc_start.Lexing.pos_lnum in
    let n = fact_node ~line in
    let loc = loc_of l ~file in
    let name = normalize_path (Path.name p) in
    (* Resolve later against the enclosing scopes: bare [Pident]s only make
       sense relative to a scope, and dotted paths may name a sibling
       submodule of the same unit ("Bitwords.popcount" from inside
       "Sim.Bitkernel" when both live in one file), which the node table
       stores under its unit-qualified name. [resolve_call] tries the
       direct (cross-unit) name first, so fully-qualified callees are
       unaffected. *)
    let scope_names =
      (* ["Sim.Cohort"; "step"] -> ["Sim.Cohort"; "Sim.Cohort.step"] *)
      List.fold_left
        (fun acc s ->
          match acc with
          | [] -> [ s ]
          | prev :: _ -> (prev ^ "." ^ s) :: acc)
        []
        (List.rev !scopes)
    in
    n.calls <- { callee = name; local_scopes = Some scope_names } :: n.calls;
    (* Source detection mirrors the syntactic rules, on resolved paths. *)
    let add kind =
      let w = active_waiver [ source_rule kind; "T1" ] in
      n.sources <-
        { o_kind = kind; o_path = name; o_loc = loc; o_waiver = w } :: n.sources
    in
    (match String.split_on_char '.' name with
    | "Random" :: _ :: _ when in_scope_r1 file -> add Sk_random
    | _ -> ());
    if List.mem name wallclock_fns then add Sk_wallclock;
    if List.mem name gc_fns then add Sk_gc;
    if List.mem name domain_id_fns then add Sk_domain_id;
    if name = "compare" && in_scope_r5 file then add Sk_polycompare;
    if
      (Option.is_some (strip_prefix ~prefix:"Obs.Clock." name)
      || name = "Obs.Clock")
      && in_scope_r6 file
    then add Sk_clock;
    if List.mem name hashtbl_order_fns && !sorted_depth = 0 then begin
      add Sk_hashtbl_order;
      let w = active_waiver [ "R7"; "R3" ] in
      n.order_ops <- (Hashtbl_iteration, name, loc, w) :: n.order_ops
    end
  in
  (* Free mutable variables of a closure literal (R9). *)
  let closure_captures (body : Typedtree.expression) ~entry =
    let bound = Hashtbl.create 16 in
    let free = ref [] in
    let pat_iter : type k.
        Tast_iterator.iterator -> k Typedtree.general_pattern -> unit =
     fun sub p ->
      (match p.Typedtree.pat_desc with
      | Typedtree.Tpat_var (id, _) -> Hashtbl.replace bound (Ident.name id) ()
      | Typedtree.Tpat_alias (_, id, _) ->
          Hashtbl.replace bound (Ident.name id) ()
      | _ -> ());
      Tast_iterator.default_iterator.pat sub p
    in
    let expr_iter sub (e : Typedtree.expression) =
      (match e.Typedtree.exp_desc with
      | Typedtree.Texp_for (id, _, _, _, _, _) ->
          Hashtbl.replace bound (Ident.name id) ()
      | Typedtree.Texp_ident (Path.Pident id, _, _) -> (
          let name = Ident.name id in
          if not (Hashtbl.mem bound name) then
            match head_ctor_name e.Typedtree.exp_type with
            | Some ctor when List.mem ctor mutable_head_ctors ->
                free := (name, ctor, loc_of e.Typedtree.exp_loc ~file) :: !free
            | _ -> ())
      | Typedtree.Texp_ident ((Path.Pdot _ as p), _, _) -> (
          (* Module-level mutable state from another module, captured by a
             chunk closure: the interprocedural face of R4. *)
          match head_ctor_name e.Typedtree.exp_type with
          | Some ctor when List.mem ctor mutable_head_ctors ->
              free :=
                ( normalize_path (Path.name p),
                  ctor,
                  loc_of e.Typedtree.exp_loc ~file )
                :: !free
          | _ -> ())
      | _ -> ());
      Tast_iterator.default_iterator.expr sub e
    in
    let it =
      { Tast_iterator.default_iterator with pat = pat_iter; expr = expr_iter }
    in
    it.Tast_iterator.expr it body;
    (* One capture per escaping variable: report its first occurrence. *)
    let seen = Hashtbl.create 8 in
    let firsts =
      List.filter
        (fun (name, _, _) ->
          if Hashtbl.mem seen name then false
          else begin
            Hashtbl.replace seen name ();
            true
          end)
        (List.rev !free)
    in
    List.map
      (fun (name, ctor, loc) ->
        {
          cap_name = name;
          cap_ty = ctor;
          cap_entry = entry;
          cap_loc = loc;
          cap_waiver = active_waiver [ "R9"; "R4" ];
        })
      firsts
  in
  let rec expr_iter sub (e : Typedtree.expression) =
    push_waivers e.Typedtree.exp_attributes (fun () ->
        match e.Typedtree.exp_desc with
        | Typedtree.Texp_ident (p, lid, _) ->
            record_ident p lid.Location.loc
        | Typedtree.Texp_for (_, _, lo, hi, dir, body) ->
            expr_iter sub lo;
            expr_iter sub hi;
            (match dir with
            | Asttypes.Downto ->
                let n = fact_node ~line:e.Typedtree.exp_loc.loc_start.pos_lnum in
                n.order_ops <-
                  ( Downto_loop,
                    "for ... downto",
                    loc_of e.Typedtree.exp_loc ~file,
                    active_waiver [ "R7" ] )
                  :: n.order_ops
            | Asttypes.Upto -> ());
            expr_iter sub body
        | Typedtree.Texp_let (_, vbs, body) ->
            List.iter (value_binding sub) vbs;
            expr_iter sub body
        | Typedtree.Texp_record { fields; extended_expression; _ } ->
            Option.iter (expr_iter sub) extended_expression;
            Array.iter
              (fun (ld, rd) ->
                match rd with
                | Typedtree.Kept _ -> ()
                | Typedtree.Overridden (_, fe) ->
                    let label = ld.Types.lbl_name in
                    if List.mem label cohort_field_names && is_function fe
                    then begin
                      (* An anonymous cohort-op lambda: give it its own node
                         so the R7 closure starts at the right place. *)
                      let saved = !current and saved_scopes = !scopes in
                      scopes := label :: !scopes;
                      let node =
                        get_node (node_of_scopes ())
                          ~line:fe.Typedtree.exp_loc.loc_start.pos_lnum
                      in
                      node.cohort_field <- true;
                      current := Some node;
                      expr_iter sub fe;
                      current := saved;
                      scopes := saved_scopes
                    end
                    else begin
                      (* A punned or named cohort field marks its function
                         binding as a cohort root during edge resolution. *)
                      (if List.mem label cohort_field_names then
                         match head_ident_name fe with
                         | Some _ ->
                             let n =
                               fact_node
                                 ~line:fe.Typedtree.exp_loc.loc_start.pos_lnum
                             in
                             n.calls <-
                               (match (unwrap_texp fe).Typedtree.exp_desc with
                               | Typedtree.Texp_ident (Path.Pident _, _, _) ->
                                   { callee = "cohort-field!"; local_scopes = None }
                                   :: n.calls
                               | _ -> n.calls)
                         | None -> ());
                      expr_iter sub fe
                    end)
              fields
        | Typedtree.Texp_apply (f, args) ->
            let head = head_ident_name f in
            (* R8: fully applied float-typed fold. *)
            (match head with
            | Some h when List.mem h fold_fns -> (
                match head_ctor_name e.Typedtree.exp_type with
                | Some "float" ->
                    let n =
                      fact_node ~line:e.Typedtree.exp_loc.loc_start.pos_lnum
                    in
                    n.float_folds <-
                      (loc_of e.Typedtree.exp_loc ~file, active_waiver [ "R8"; "R3" ])
                      :: n.float_folds
                | _ -> ())
            | _ -> ());
            (* R9: closure literals handed to the supervised chunk fold. *)
            (match head with
            | Some h
              when List.exists
                     (fun s -> suffix_matches ~suffix:s h)
                     supervised_entries ->
                List.iter
                  (fun (_, a) ->
                    match a with
                    | Some ae when is_function ae ->
                        let n =
                          fact_node
                            ~line:ae.Typedtree.exp_loc.loc_start.pos_lnum
                        in
                        n.captures <- closure_captures ae ~entry:h @ n.captures
                    | _ -> ())
                  args
            | _ -> ());
            (* Sorted-escape bookkeeping for the Hashtbl-order source: the
               same three shapes the syntactic pass recognises. *)
            let sorted_arg_positions =
              match (head_ident_name f, args) with
              | Some "|>", [ (_, Some lhs); (_, Some rhs) ]
                when Option.fold ~none:false
                       ~some:(fun p -> List.mem p sort_fns)
                       (head_ident_name rhs) ->
                  Some (`Pipe_lhs (lhs, rhs))
              | Some "@@", [ (_, Some lhs); (_, Some rhs) ]
                when Option.fold ~none:false
                       ~some:(fun p -> List.mem p sort_fns)
                       (head_ident_name lhs) ->
                  Some (`App_rhs (lhs, rhs))
              | _ -> (
                  match head with
                  | Some h when List.mem h sort_fns -> Some `All_args
                  | _ -> None)
            in
            (match sorted_arg_positions with
            | Some (`Pipe_lhs (lhs, rhs)) ->
                expr_iter sub f;
                incr sorted_depth;
                expr_iter sub lhs;
                decr sorted_depth;
                expr_iter sub rhs
            | Some (`App_rhs (lhs, rhs)) ->
                expr_iter sub f;
                expr_iter sub lhs;
                incr sorted_depth;
                expr_iter sub rhs;
                decr sorted_depth
            | Some `All_args ->
                expr_iter sub f;
                incr sorted_depth;
                List.iter (fun (_, a) -> Option.iter (expr_iter sub) a) args;
                decr sorted_depth
            | None ->
                expr_iter sub f;
                List.iter (fun (_, a) -> Option.iter (expr_iter sub) a) args)
        | _ -> Tast_iterator.default_iterator.expr sub e)
  and value_binding sub (vb : Typedtree.value_binding) =
    let name =
      match vb.Typedtree.vb_pat.Typedtree.pat_desc with
      | Typedtree.Tpat_var (id, _) -> Some (Ident.name id)
      | Typedtree.Tpat_alias (_, id, _) -> Some (Ident.name id)
      | _ -> None
    in
    push_waivers vb.Typedtree.vb_attributes (fun () ->
        match name with
        | Some n when is_function vb.Typedtree.vb_expr ->
            let saved = !current and saved_scopes = !scopes in
            scopes := n :: !scopes;
            let node =
              get_node (node_of_scopes ())
                ~line:vb.Typedtree.vb_loc.Location.loc_start.Lexing.pos_lnum
            in
            (match
               List.filter_map (parse_waiver ~file) vb.Typedtree.vb_attributes
             with
            | w :: _ when node.fn_waiver = None -> node.fn_waiver <- Some w
            | _ -> ());
            current := Some node;
            expr_iter sub vb.Typedtree.vb_expr;
            current := saved;
            scopes := saved_scopes
        | _ -> expr_iter sub vb.Typedtree.vb_expr)
  in
  let structure_item sub (item : Typedtree.structure_item) =
    match item.Typedtree.str_desc with
    | Typedtree.Tstr_value (_, vbs) -> List.iter (value_binding sub) vbs
    | Typedtree.Tstr_module mb ->
        let saved_scopes = !scopes and saved = !current in
        (match mb.Typedtree.mb_id with
        | Some id -> scopes := Ident.name id :: !scopes
        | None -> ());
        current := None;
        Tast_iterator.default_iterator.module_binding sub mb;
        scopes := saved_scopes;
        current := saved
    | Typedtree.Tstr_attribute a -> (
        (* File-level waivers apply to the rest of the unit; modelled as a
           push with no pop (the stack resets per file anyway). *)
        match parse_waiver ~file a with
        | Some w ->
            graph.waivers_seen <- w :: graph.waivers_seen;
            waiver_stack := w :: !waiver_stack
        | None -> ())
    | _ -> Tast_iterator.default_iterator.structure_item sub item
  in
  let it =
    {
      Tast_iterator.default_iterator with
      expr = expr_iter;
      value_binding;
      structure_item;
    }
  in
  it.Tast_iterator.structure it str

(* ------------------------------------------------------------------ *)
(* Loading                                                             *)
(* ------------------------------------------------------------------ *)

let load_cmt graph path =
  match Cmt_format.read_cmt path with
  | exception _ -> ()  (* unreadable / version-skewed cmt: skip *)
  | cmt -> (
      match cmt.Cmt_format.cmt_annots with
      | Cmt_format.Implementation str ->
          let unit_name = normalize_unit cmt.Cmt_format.cmt_modname in
          let file =
            match cmt.Cmt_format.cmt_sourcefile with
            | Some f -> f
            | None -> path
          in
          graph.units <- unit_name :: graph.units;
          walk_structure graph ~unit_name ~file str
      | _ -> ())

let rec walk_cmt_files acc path =
  if Sys.file_exists path && Sys.is_directory path then
    let base = Filename.basename path in
    if base = "_build" || base = ".git" then acc
    else
      Sys.readdir path |> Array.to_list
      |> List.sort String.compare
      |> List.fold_left
           (fun acc name -> walk_cmt_files acc (Filename.concat path name))
           acc
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

let create () = { nodes = Hashtbl.create 512; units = []; waivers_seen = [] }

let load_files paths =
  let g = create () in
  List.iter (load_cmt g) (List.sort String.compare paths);
  g

(* Walk [paths] for .cmt files (dune hides them in .objs/.eobjs dirs, which
   a plain directory walk visits). When a path holds none — the common case
   of running from the source root instead of the build dir — retry under
   _build/default so `detlint --taint lib` works from a checkout too. *)
let load_paths paths =
  let files =
    List.concat_map
      (fun p ->
        match walk_cmt_files [] p with
        | [] -> walk_cmt_files [] (Filename.concat "_build/default" p)
        | fs -> fs)
      paths
  in
  (files, load_files files)

(* ------------------------------------------------------------------ *)
(* Edge resolution                                                     *)
(* ------------------------------------------------------------------ *)

(* Resolve a recorded call to a known node name, if any: globals match
   directly (fully-qualified cross-unit paths), then the enclosing scopes
   are tried innermost-first — this covers both bare locals and dotted
   paths into sibling submodules of the same unit, whose nodes carry the
   unit prefix the path lacks. *)
let resolve_call graph c =
  if Hashtbl.mem graph.nodes c.callee then Some c.callee
  else
    match c.local_scopes with
    | None -> None
    | Some scopes ->
        let rec try_scopes = function
          | [] -> None
          | s :: rest ->
              let cand = s ^ "." ^ c.callee in
              if Hashtbl.mem graph.nodes cand then Some cand
              else try_scopes rest
        in
        try_scopes scopes

(* Adjacency as sorted, deduplicated successor lists: deterministic BFS
   orders make chains (and therefore the ledger) byte-stable. *)
let successors graph =
  let succ = Hashtbl.create (Hashtbl.length graph.nodes) in
  Hashtbl.iter
    (fun fn node ->
      let outs =
        List.filter_map (resolve_call graph) node.calls
        |> List.filter (fun callee -> callee <> fn)
        |> List.sort_uniq String.compare
      in
      Hashtbl.replace succ fn outs)
    graph.nodes;
  succ

let node_names graph =
  Hashtbl.fold (fun fn _ acc -> fn :: acc) graph.nodes []
  |> List.sort String.compare
