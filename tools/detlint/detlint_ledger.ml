(* The purity ledger: byte-stable JSON serialization of the taint pass's
   per-function classification ([results/detlint_taint.json]).

   Stability contract: entries arrive name-sorted from the taint pass,
   chains are shortest BFS paths over sorted adjacency, and this module
   adds no map iteration of its own — so two runs over the same tree
   produce byte-identical ledgers, and `dune build @bench-smoke` can gate
   on a plain diff against the committed file. *)

module G = Detlint_callgraph
module T = Detlint_taint

let schema_version = 2

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let class_name = function
  | T.Det -> "det"
  | T.Nondet _ -> "nondet"
  | T.Quarantined _ -> "quarantined"

let entry_json (e : T.entry) =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "    { \"fn\": \"%s\", \"file\": \"%s\", \"line\": %d, \"class\": \
        \"%s\""
       (json_escape e.T.e_fn) (json_escape e.T.e_file) e.T.e_line
       (class_name e.T.e_class));
  (match e.T.e_class with
  | T.Det -> ()
  | T.Nondet { source; chain } ->
      Buffer.add_string b
        (Printf.sprintf
           ",\n      \"source\": { \"kind\": \"%s\", \"path\": \"%s\", \
            \"file\": \"%s\", \"line\": %d, \"col\": %d },\n      \
            \"chain\": [%s]"
           (G.source_kind_name source.G.o_kind)
           (json_escape source.G.o_path)
           (json_escape source.G.o_loc.G.l_file)
           source.G.o_loc.G.l_line source.G.o_loc.G.l_col
           (String.concat ", "
              (List.map (fun f -> "\"" ^ json_escape f ^ "\"") chain)))
  | T.Quarantined { q_rule; q_just } ->
      Buffer.add_string b
        (Printf.sprintf
           ", \"waiver_rule\": \"%s\", \"justification\": \"%s\"" q_rule
           (json_escape q_just)));
  Buffer.add_string b " }";
  Buffer.contents b

let to_json (r : T.result) =
  let count cls =
    List.length
      (List.filter (fun e -> class_name e.T.e_class = cls) r.T.entries)
  in
  let b = Buffer.create 16384 in
  Buffer.add_string b
    (Printf.sprintf
       "{\n  \"tool\": \"detlint-taint\",\n  \"schema_version\": %d,\n  \
        \"summary\": { \"functions\": %d, \"det\": %d, \"nondet\": %d, \
        \"quarantined\": %d },\n  \"functions\": [\n"
       schema_version
       (List.length r.T.entries)
       (count "det") (count "nondet") (count "quarantined"));
  List.iteri
    (fun i e ->
      Buffer.add_string b (entry_json e);
      Buffer.add_string b
        (if i = List.length r.T.entries - 1 then "\n" else ",\n"))
    r.T.entries;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let write_file path (r : T.result) =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_json r))
