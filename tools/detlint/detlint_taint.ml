(* detlint's interprocedural taint pass.

   Inputs: the call graph and per-function facts extracted from the typed
   trees by detlint_callgraph.ml. Outputs: a purity classification for
   every function (the ledger, serialized by detlint_ledger.ml), plus
   findings in the syntactic pass's [Detlint.finding] shape so main.ml
   renders and gates both passes uniformly:

   T1  an unwaivered nondeterminism source inside the protected region —
       the forward call-closure of the experiment sinks (engine step
       paths, [Runner.run_trials]*, [Stats] merges, [Obs.Metrics],
       checkpoint serialization, protocol phase/absorb/finish hot paths).
       The finding carries the full sink→source call chain.
   R7  member-order-sensitive control flow ([for ... downto], unsorted
       Hashtbl iteration) inside the cohort-op closure — the call-closure
       of [c_phase_a]/[c_absorb]/[c_msg] — which breaks the ascending
       member-draw byte-identity contract of DESIGN §5c.
   R8  a float-typed [fold_left]/[fold_right] inside the protected region:
       order-sensitive accumulation flowing toward merged registries must
       use the commutative init/absorb/finish algebra or carry a waiver.
   R9  mutable state ([ref]/[Hashtbl.t]/[Buffer.t]/[Queue.t]/[Stack.t])
       captured across the [fold_chunks_supervised] chunk boundary.

   Taint propagates callee → caller: a function calling a nondet function
   is nondet, with the shortest call chain to the underlying source
   recorded. A function-level [@detlint.allow "T1: why"] quarantines its
   function — it neither seeds nor transmits taint — and waived source
   occurrences quarantine just that occurrence. Chains are deterministic:
   adjacency lists are sorted and BFS roots are processed in name order,
   so the ledger is byte-stable across runs. *)

module G = Detlint_callgraph

type classification =
  | Det
  | Nondet of {
      source : G.occurrence;  (* the underlying source occurrence *)
      chain : string list;  (* this function -> ... -> sourced function *)
    }
  | Quarantined of { q_rule : string; q_just : string }

type entry = {
  e_fn : string;
  e_file : string;
  e_line : int;
  e_class : classification;
}

type result = {
  entries : entry list;  (* name-sorted, one per function *)
  findings : Detlint.finding list;
  used_waivers : G.loc list;  (* attribute locations that earned their keep *)
}

(* ------------------------------------------------------------------ *)
(* Sink and cohort roots                                               *)
(* ------------------------------------------------------------------ *)

(* [Fn]: dotted-suffix match on the full function name. [Mod]: suffix
   match on the enclosing module path (every function of the module is a
   root). Suffix matching keeps the self-contained fixture corpus
   ("Bad_taint_chain.Runner.run_trials") on the same patterns as the real
   tree ("Sim.Runner.run_trials"). *)
type root_pat = Fn of string | Mod of string

let sink_roots =
  [
    Fn "Runner.run_trials";
    Fn "Runner.run_trials_supervised";
    Fn "Engine.step";
    Fn "Engine.run";
    Fn "Engine.run_until";
    Fn "Cohort.step";
    Fn "Cohort.run";
    Fn "Cohort.run_until";
    Fn "Bitkernel.step";
    Fn "Bitkernel.run";
    Fn "Bitkernel.run_until";
    Fn "Bitkernel.run_batch";
    (* The word primitives feed every packed round's tallies and
       iteration order; a nondet source there corrupts experiment
       tables as surely as one in Engine.step. *)
    Mod "Bitwords";
    Fn "Welford.merge";
    Fn "Histogram.merge";
    Fn "Metrics.merge";
    Mod "Obs.Metrics";
    Mod "Checkpoint";
    (* The fault injector sits on the supervised fold's hot path (every
       chunk body and checkpoint call trips it), so its own functions
       must stay deterministic too: fault placement may depend only on
       the plan and the hit counters, never on a nondet source. *)
    Mod "Fault";
  ]

(* Protocol hot paths are reached through first-class records the static
   graph cannot follow (engines call [p.phase_a]), so the implementations
   are rooted by naming convention: the documented protocol field names
   and the [acc_*]-style helpers bound to them. *)
let protocol_base_pats = [ "phase_a"; "phase_b"; "absorb"; "finish" ]

let cohort_base_names = [ "c_phase_a"; "c_absorb"; "c_msg" ]

(* Bitops implementations are likewise reached through the
   [Protocol.bitops] record (the bit-packed kernel calls [bo.bo_step]),
   so they root by the documented field names. *)
let bitops_base_names =
  [ "bo_pack"; "bo_unpack"; "bo_uniform"; "bo_aux_draw"; "bo_msg"; "bo_step" ]

let ends_with ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

let is_protocol_base base =
  List.mem base cohort_base_names
  || List.mem base bitops_base_names
  || List.exists
       (fun p -> base = p || ends_with ~suffix:("_" ^ p) base)
       protocol_base_pats

let is_sink_root (n : G.node) =
  let mp = G.module_path n.G.fn in
  List.exists
    (function
      | Fn f -> G.suffix_matches ~suffix:f n.G.fn
      | Mod m -> G.suffix_matches ~suffix:m mp)
    sink_roots
  || is_protocol_base (G.base_name n.G.fn)
  || n.G.cohort_field

let is_cohort_root (n : G.node) =
  n.G.cohort_field || List.mem (G.base_name n.G.fn) cohort_base_names

(* ------------------------------------------------------------------ *)
(* Graph closures                                                      *)
(* ------------------------------------------------------------------ *)

(* Forward BFS from [roots] (sorted), recording each node's predecessor so
   root→node chains reconstruct deterministically. *)
let forward_closure succ roots =
  let pred : (string, string option) Hashtbl.t = Hashtbl.create 64 in
  let q = Queue.create () in
  List.iter
    (fun r ->
      if not (Hashtbl.mem pred r) then begin
        Hashtbl.replace pred r None;
        Queue.add r q
      end)
    roots;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun v ->
        if not (Hashtbl.mem pred v) then begin
          Hashtbl.replace pred v (Some u);
          Queue.add v q
        end)
      (Option.value (Hashtbl.find_opt succ u) ~default:[])
  done;
  pred

(* Chain from its closure root down to [fn], e.g.
   ["Sim.Runner.run_trials"; "Core.Synran.mid"; "Core.Synran.leaf"]. *)
let chain_from_root pred fn =
  let rec up acc fn =
    match Hashtbl.find_opt pred fn with
    | Some (Some parent) -> up (fn :: acc) parent
    | Some None | None -> fn :: acc
  in
  up [] fn

let compare_occurrence (a : G.occurrence) (b : G.occurrence) =
  let c = G.compare_loc a.G.o_loc b.G.o_loc in
  if c <> 0 then c else String.compare a.G.o_path b.G.o_path

let unwaived_sources (n : G.node) =
  List.filter (fun o -> o.G.o_waiver = None) n.G.sources
  |> List.sort compare_occurrence

(* ------------------------------------------------------------------ *)
(* The analysis                                                        *)
(* ------------------------------------------------------------------ *)

let analyze (g : G.graph) =
  let succ = G.successors g in
  let names = G.node_names g in
  let node fn = Hashtbl.find g.G.nodes fn in
  let quarantined fn = (node fn).G.fn_waiver <> None in
  (* Callers (reverse adjacency), sorted for deterministic BFS. *)
  let callers : (string, string list) Hashtbl.t =
    Hashtbl.create (List.length names)
  in
  Hashtbl.iter
    (fun u outs ->
      List.iter
        (fun v ->
          let cur = Option.value (Hashtbl.find_opt callers v) ~default:[] in
          Hashtbl.replace callers v (u :: cur))
        outs)
    succ;
  Hashtbl.iter
    (fun v cs -> Hashtbl.replace callers v (List.sort_uniq String.compare cs))
    (Hashtbl.copy callers);
  (* Taint: multi-source BFS from the seeded (unwaivered-source, not
     quarantined) functions along caller edges. [towards] records the next
     hop on the shortest path toward the source; [origin] the seed. *)
  let towards : (string, string option) Hashtbl.t = Hashtbl.create 64 in
  let origin : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let seeds =
    List.filter
      (fun fn -> (not (quarantined fn)) && unwaived_sources (node fn) <> [])
      names
  in
  let q = Queue.create () in
  List.iter
    (fun s ->
      Hashtbl.replace towards s None;
      Hashtbl.replace origin s s;
      Queue.add s q)
    seeds;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun c ->
        if (not (Hashtbl.mem towards c)) && not (quarantined c) then begin
          Hashtbl.replace towards c (Some u);
          Hashtbl.replace origin c (Hashtbl.find origin u);
          Queue.add c q
        end)
      (Option.value (Hashtbl.find_opt callers u) ~default:[])
  done;
  let chain_to_source fn =
    let rec down acc fn =
      match Hashtbl.find_opt towards fn with
      | Some (Some nxt) -> down (fn :: acc) nxt
      | Some None | None -> List.rev (fn :: acc)
    in
    down [] fn
  in
  (* Protected and cohort regions. *)
  let sink_root_names =
    List.filter (fun fn -> is_sink_root (node fn)) names
  in
  let cohort_root_names =
    List.filter (fun fn -> is_cohort_root (node fn)) names
  in
  let protected_pred = forward_closure succ sink_root_names in
  let cohort_pred = forward_closure succ cohort_root_names in
  (* ---- findings -------------------------------------------------- *)
  let findings = ref [] in
  let used : G.loc list ref = ref [] in
  let mark_used (w : G.waiver option) =
    match w with Some w -> used := w.G.w_loc :: !used | None -> ()
  in
  let emit ~rule ~(loc : G.loc) ~message ~hint =
    findings :=
      {
        Detlint.rule;
        file = loc.G.l_file;
        line = loc.G.l_line;
        col = loc.G.l_col;
        message;
        hint;
        severity = Detlint.Violation;
        justification = None;
      }
      :: !findings
  in
  let render_chain c = String.concat " -> " c in
  List.iter
    (fun fn ->
      let n = node fn in
      (* Every attached waiver is live against the facts it covers. *)
      List.iter (fun o -> mark_used o.G.o_waiver) n.G.sources;
      List.iter (fun (_, w) -> mark_used w) n.G.float_folds;
      List.iter (fun (_, _, _, w) -> mark_used w) n.G.order_ops;
      List.iter (fun c -> mark_used c.G.cap_waiver) n.G.captures;
      let tainted_callee =
        List.exists
          (fun callee -> Hashtbl.mem towards callee)
          (Option.value (Hashtbl.find_opt succ fn) ~default:[])
      in
      if n.G.fn_waiver <> None && (n.G.sources <> [] || tainted_callee) then
        mark_used n.G.fn_waiver;
      let protected_ = Hashtbl.mem protected_pred fn in
      (* T1: unwaivered source inside the protected region. *)
      if protected_ && n.G.fn_waiver = None then
        List.iter
          (fun (o : G.occurrence) ->
            let chain = chain_from_root protected_pred fn in
            emit ~rule:"T1" ~loc:o.G.o_loc
              ~message:
                (Printf.sprintf
                   "nondeterminism source %s (%s) reaches a protected sink \
                    path: %s"
                   o.G.o_path
                   (G.source_kind_name o.G.o_kind)
                   (render_chain chain))
              ~hint:
                (Printf.sprintf
                   "every function on this chain feeds an experiment \
                    sink; eliminate the source, or quarantine %s with \
                    [@detlint.allow \"%s: why\"] / the whole function with \
                    [@detlint.allow \"T1: why\"]"
                   o.G.o_path
                   (G.source_rule o.G.o_kind)))
          (unwaived_sources n);
      (* R7: order-sensitive control flow inside the cohort-op closure. *)
      if Hashtbl.mem cohort_pred fn && n.G.fn_waiver = None then
        List.iter
          (fun (op, what, loc, w) ->
            match w with
            | Some _ -> ()
            | None ->
                let chain = chain_from_root cohort_pred fn in
                emit ~rule:"R7" ~loc
                  ~message:
                    (Printf.sprintf
                       "%s inside the cohort-op closure (%s): class-member \
                        processing must be ascending over the documented \
                        sorted accessors"
                       (match op with
                       | G.Downto_loop -> "descending for-loop"
                       | G.Hashtbl_iteration ->
                           Printf.sprintf "unsorted %s" what)
                       (render_chain chain))
                  ~hint:
                    "cohort byte-identity (DESIGN \xc2\xa75c) requires \
                     member-pid-ascending iteration; iterate sub_members / \
                     cls_members upward, or waive with [@detlint.allow \
                     \"R7: why order cannot be observed\"]")
          (List.sort
             (fun (_, _, a, _) (_, _, b, _) -> G.compare_loc a b)
             n.G.order_ops);
      (* R8: float folds on merge-flow paths. *)
      if protected_ && n.G.fn_waiver = None then
        List.iter
          (fun (loc, w) ->
            match w with
            | Some _ -> ()
            | None ->
                let chain = chain_from_root protected_pred fn in
                emit ~rule:"R8" ~loc
                  ~message:
                    (Printf.sprintf
                       "order-sensitive float fold on a merge-flow path \
                        (%s)"
                       (render_chain chain))
                  ~hint:
                    "float addition is not associative: route the \
                     accumulation through the commutative \
                     init/absorb/finish aggregate algebra (Stats.Welford, \
                     Protocol.aggregate), or waive with [@detlint.allow \
                     \"R8: why the fold order is fixed\"]")
          (List.sort (fun (a, _) (b, _) -> G.compare_loc a b) n.G.float_folds);
      (* R9: mutable captures across the supervised chunk boundary. *)
      List.iter
        (fun (c : G.capture) ->
          match c.G.cap_waiver with
          | Some _ -> ()
          | None ->
              emit ~rule:"R9" ~loc:c.G.cap_loc
                ~message:
                  (Printf.sprintf
                     "mutable %s %S captured by a closure passed to %s \
                      escapes the supervised chunk boundary"
                     c.G.cap_ty c.G.cap_name c.G.cap_entry)
                ~hint:
                  "chunk closures must keep state chunk-local and return \
                   it through the ~create/~work/~merge accumulator; \
                   escaped mutable state makes resumed runs diverge from \
                   uninterrupted ones")
        (List.sort
           (fun a b -> G.compare_loc a.G.cap_loc b.G.cap_loc)
           n.G.captures))
    names;
  (* ---- ledger entries -------------------------------------------- *)
  let entries =
    List.map
      (fun fn ->
        let n = node fn in
        let cls =
          match n.G.fn_waiver with
          | Some w ->
              Quarantined { q_rule = w.G.w_rule; q_just = w.G.w_just }
          | None -> (
              if Hashtbl.mem towards fn then
                let seed = Hashtbl.find origin fn in
                let source = List.hd (unwaived_sources (node seed)) in
                Nondet { source; chain = chain_to_source fn }
              else
                match
                  List.sort compare_occurrence
                    (List.filter (fun o -> o.G.o_waiver <> None) n.G.sources)
                with
                | o :: _ -> (
                    match o.G.o_waiver with
                    | Some w ->
                        Quarantined
                          { q_rule = w.G.w_rule; q_just = w.G.w_just }
                    | None -> Det)
                | [] -> Det)
        in
        { e_fn = fn; e_file = n.G.n_file; e_line = n.G.n_line; e_class = cls })
      names
  in
  {
    entries;
    findings = List.rev !findings;
    used_waivers = List.sort_uniq G.compare_loc !used;
  }

(* Typed-pass waiver audit: every waiver the typed trees carry, paired
   with whether this analysis attributed any suppression to it. main.ml
   unions this with the syntactic pass's sites before flagging W1. *)
let waiver_sites (g : G.graph) (r : result) =
  let used l = List.exists (fun u -> G.compare_loc u l = 0) r.used_waivers in
  List.sort
    (fun (a : G.waiver) (b : G.waiver) -> G.compare_loc a.G.w_loc b.G.w_loc)
    g.G.waivers_seen
  |> List.map (fun (w : G.waiver) -> (w, used w.G.w_loc))
