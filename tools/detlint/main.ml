(* detlint CLI.

   Usage: detlint [--json FILE] PATH...

   Walks every PATH recursively for [.ml] files (skipping [_build], [.git]
   and the deliberately-bad [lint_fixtures] corpus), lints each against
   rules R1-R5, prints human-readable findings, optionally writes a JSON
   report, and exits non-zero iff any unwaived violation remains. *)

let usage = "usage: detlint [--json FILE] PATH..."

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let () =
  let json_out = ref None in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--json" :: file :: rest ->
        json_out := Some file;
        parse rest
    | "--json" :: [] ->
        prerr_endline usage;
        exit 2
    | ("--help" | "-h") :: _ ->
        print_endline usage;
        exit 0
    | p :: rest ->
        paths := p :: !paths;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let paths = List.rev !paths in
  if paths = [] then begin
    prerr_endline usage;
    exit 2
  end;
  let files, findings = Detlint.lint_paths paths in
  List.iter (fun f -> print_endline (Detlint.render f)) findings;
  let violations =
    List.filter (fun f -> f.Detlint.severity = Detlint.Violation) findings
  in
  let waived =
    List.filter (fun f -> f.Detlint.severity = Detlint.Waived) findings
  in
  Printf.printf
    "detlint: %d file(s) checked, %d violation(s), %d waived finding(s)\n"
    (List.length files) (List.length violations) (List.length waived);
  (match !json_out with
  | None -> ()
  | Some file ->
      mkdir_p (Filename.dirname file);
      let oc = open_out file in
      output_string oc (Detlint.to_json ~files:(List.length files) findings);
      close_out oc;
      Printf.printf "detlint: wrote %s\n" file);
  if violations <> [] then exit 1
