(* detlint CLI.

   Usage: detlint [OPTIONS] PATH...

     --json FILE       write the syntactic+taint findings report
     --taint           also run the interprocedural taint pass over the
                       .cmt typed trees found under PATH...
                       (falls back to _build/default/PATH when a PATH
                       holds no .cmt, so it works from a source checkout)
     --ledger FILE     write the purity ledger (implies --taint)
     --check-waivers   audit [@detlint.allow] staleness across both
                       passes; stale waivers are W1 violations
                       (implies --taint)
     --syntactic-only  fast-iteration escape hatch: refuse the taint
                       flags, run only the parse-tree rules

   Walks every PATH recursively for [.ml] files (skipping [_build], [.git]
   and the deliberately-bad [lint_fixtures] corpus), lints each against
   rules R1-R6, optionally layers the typed-tree taint analysis (T1,
   R7-R9) on top, prints human-readable findings, and exits non-zero iff
   any unwaived violation remains. *)

let usage =
  "usage: detlint [--json FILE] [--taint] [--ledger FILE] [--check-waivers] \
   [--syntactic-only] PATH..."

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let () =
  let json_out = ref None in
  let ledger_out = ref None in
  let taint = ref false in
  let check_waivers = ref false in
  let syntactic_only = ref false in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--json" :: file :: rest ->
        json_out := Some file;
        parse rest
    | "--ledger" :: file :: rest ->
        ledger_out := Some file;
        taint := true;
        parse rest
    | ("--json" | "--ledger") :: [] ->
        prerr_endline usage;
        exit 2
    | "--taint" :: rest ->
        taint := true;
        parse rest
    | "--check-waivers" :: rest ->
        check_waivers := true;
        taint := true;
        parse rest
    | "--syntactic-only" :: rest ->
        syntactic_only := true;
        parse rest
    | ("--help" | "-h") :: _ ->
        print_endline usage;
        exit 0
    | p :: rest ->
        paths := p :: !paths;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let paths = List.rev !paths in
  if paths = [] then begin
    prerr_endline usage;
    exit 2
  end;
  if !syntactic_only && !taint then begin
    prerr_endline
      "detlint: --syntactic-only excludes --taint/--ledger/--check-waivers";
    exit 2
  end;
  (* Pass 1: syntactic. *)
  let files, findings, sites = Detlint.lint_paths_audit paths in
  (* Pass 2: typed-tree taint. *)
  let taint_findings, ledger, typed_sites =
    if not !taint then ([], None, [])
    else begin
      let cmts, graph = Detlint_callgraph.load_paths paths in
      if cmts = [] then begin
        prerr_endline
          "detlint: --taint found no .cmt files under the given paths (run \
           `dune build @check` first)";
        exit 2
      end;
      let result = Detlint_taint.analyze graph in
      (* Typed-pass waiver sites, with usage resolved against the facts
         the taint pass actually covered. *)
      let typed_sites =
        List.map
          (fun ((w : Detlint_callgraph.waiver), used) ->
            {
              Detlint.ws_rule = w.Detlint_callgraph.w_rule;
              ws_file = w.Detlint_callgraph.w_loc.Detlint_callgraph.l_file;
              ws_line = w.Detlint_callgraph.w_loc.Detlint_callgraph.l_line;
              ws_col = w.Detlint_callgraph.w_loc.Detlint_callgraph.l_col;
              ws_used = used;
            })
          (Detlint_taint.waiver_sites graph result)
      in
      (result.Detlint_taint.findings, Some result, typed_sites)
    end
  in
  (* W1: waivers no pass could attribute a suppressed finding to. Both
     passes key sites by the attribute's own source location, so usage
     observed by either clears the site. *)
  let w1_findings =
    if not !check_waivers then []
    else begin
      let module M = Map.Make (String) in
      let key (s : Detlint.waiver_site) =
        Printf.sprintf "%s:%06d:%04d:%s" s.Detlint.ws_file s.Detlint.ws_line
          s.Detlint.ws_col s.Detlint.ws_rule
      in
      let merged =
        List.fold_left
          (fun m (s : Detlint.waiver_site) ->
            M.update (key s)
              (function
                | Some (s0 : Detlint.waiver_site) ->
                    if s.Detlint.ws_used then s0.Detlint.ws_used <- true;
                    Some s0
                | None -> Some s)
              m)
          M.empty (sites @ typed_sites)
      in
      M.fold
        (fun _ (s : Detlint.waiver_site) acc ->
          if s.Detlint.ws_used then acc
          else
            {
              Detlint.rule = "W1";
              file = s.Detlint.ws_file;
              line = s.Detlint.ws_line;
              col = s.Detlint.ws_col;
              message =
                Printf.sprintf
                  "stale waiver: [@detlint.allow \"%s: ...\"] suppresses \
                   nothing"
                  s.Detlint.ws_rule;
              hint =
                "delete the waiver (the code it excused is gone), or fix \
                 the rule tag if it excuses something else";
              severity = Detlint.Violation;
              justification = None;
            }
            :: acc)
        merged []
      |> List.rev
    end
  in
  let findings =
    List.stable_sort Detlint.compare_findings
      (findings @ taint_findings @ w1_findings)
  in
  List.iter (fun f -> print_endline (Detlint.render f)) findings;
  let violations =
    List.filter (fun f -> f.Detlint.severity = Detlint.Violation) findings
  in
  let waived =
    List.filter (fun f -> f.Detlint.severity = Detlint.Waived) findings
  in
  Printf.printf
    "detlint: %d file(s) checked, %d violation(s), %d waived finding(s)\n"
    (List.length files) (List.length violations) (List.length waived);
  (match ledger with
  | Some result ->
      Printf.printf "detlint: taint pass classified %d function(s)\n"
        (List.length result.Detlint_taint.entries);
      (match !ledger_out with
      | Some file ->
          mkdir_p (Filename.dirname file);
          Detlint_ledger.write_file file result;
          Printf.printf "detlint: wrote %s\n" file
      | None -> ())
  | None -> ());
  (match !json_out with
  | None -> ()
  | Some file ->
      mkdir_p (Filename.dirname file);
      let oc = open_out file in
      output_string oc (Detlint.to_json ~files:(List.length files) findings);
      close_out oc;
      Printf.printf "detlint: wrote %s\n" file);
  if violations <> [] then exit 1
